//! The declarative scenario/experiment API: declare a
//! `workloads × scenarios × seeds` grid, run it in parallel, get a
//! structured [`RunSet`] back.
//!
//! Grid cells are simulated through streaming [`stbpu_sim::SimSession`]s
//! over [`Workload`]-opened event sources. Small generator-backed suites
//! materialize their stream once per (workload, seed) and replay views of
//! it; everything else — large runs, trace files, custom sources — streams
//! per cell, so memory never bounds branch count. An optional interval
//! configuration attaches an [`IntervalRecorder`] so every [`RunRecord`]
//! can carry an OAE-over-time series.

use crate::error::EngineError;
use crate::parallel::parallel_map;
use crate::registry::ModelRegistry;
use crate::report::{csv_header, protection_from_str, report_to_csv_row, report_to_json};
use crate::resume::{cell_path, run_cell, suite_from_json_line, suite_to_json_line};
use crate::stats::{geomean, mean};
use crate::workload::Workload;
use stbpu_sim::{
    fnv1a64, simulate_with, IntervalRecorder, IntervalWindow, Protection, SessionOptions,
    SimOptions, SimReport, SimSession, Warmup,
};
use stbpu_trace::{EventSource, Trace, WorkloadProfile};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Suites over generator-backed workloads materialize their stream once
/// (instead of regenerating it per scenario) up to this many branches;
/// larger runs stream every cell in O(1) memory.
const MATERIALIZE_SUITE_CAP: usize = 1_000_000;

/// One (model, protection) cell of an experiment — the unit the old
/// `fig3_schemes()` tuples and every per-binary model loop collapsed into.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Registry model spec (`"skl"`, `"st_skl@r=0.05"`, …).
    pub model: String,
    /// Protection policy the simulator enforces around the model.
    pub protection: Protection,
}

impl Scenario {
    /// A scenario from a model spec string and a [`Protection`].
    pub fn new(model: &str, protection: Protection) -> Self {
        Scenario {
            model: model.to_string(),
            protection,
        }
    }

    /// A scenario from `"model:protection"` (e.g. `"st_skl@r=0.01:stbpu"`).
    pub fn parse(s: &str) -> Result<Self, EngineError> {
        let (model, protection) = s
            .rsplit_once(':')
            .ok_or_else(|| EngineError::InvalidScenario(s.to_string()))?;
        Ok(Scenario::new(
            model.trim(),
            protection_from_str(protection)?,
        ))
    }

    /// The five Figure 3 schemes, in legend order.
    pub fn fig3() -> Vec<Scenario> {
        vec![
            Scenario::new("skl", Protection::Unprotected),
            Scenario::new("st_skl@r=0.05", Protection::Stbpu),
            Scenario::new("skl", Protection::Ucode1),
            Scenario::new("skl", Protection::Ucode2),
            Scenario::new("conservative", Protection::Conservative),
        ]
    }
}

/// Runs every scenario over one already-materialized trace, in order.
/// `seed` keys the models; the caller owns trace generation.
pub fn run_scenarios(
    registry: &ModelRegistry,
    trace: &Trace,
    scenarios: &[Scenario],
    seed: u64,
    warmup_frac: f64,
) -> Result<Vec<SimReport>, EngineError> {
    let opts = SimOptions {
        warmup_frac,
        threads: Some(trace.thread_count().max(1)),
    };
    scenarios
        .iter()
        .map(|sc| {
            let mut model = registry.build(&sc.model, seed)?;
            Ok(simulate_with(&mut model, sc.protection, trace, &opts)?)
        })
        .collect()
}

/// One completed cell of an experiment grid.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Workload label (profile name, trace name, file path…).
    pub workload: String,
    /// Model spec string the cell was built from.
    pub model_spec: String,
    /// Seed that keyed trace generation and the model.
    pub seed: u64,
    /// The simulation result.
    pub report: SimReport,
    /// OAE-over-time windows (empty unless [`Experiment::interval`] was
    /// configured).
    pub intervals: Vec<IntervalWindow>,
}

/// Results of an [`Experiment`] run, in grid order:
/// workloads (outer) × seeds × scenarios (inner).
#[derive(Clone, Debug)]
pub struct RunSet {
    records: Vec<RunRecord>,
    scenarios_per_suite: usize,
}

impl RunSet {
    /// All records, grid-ordered.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Iterates (workload, seed)-suites: each yielded slice holds one
    /// record per scenario, in scenario order.
    pub fn suites(&self) -> impl Iterator<Item = &[RunRecord]> {
        self.records.chunks(self.scenarios_per_suite)
    }

    /// Reports of suite `i`, in scenario order (legend order for Figure 3
    /// presets).
    ///
    /// # Panics
    ///
    /// Panics if `i >= suite_count()`.
    pub fn suite_reports(&self, i: usize) -> Vec<&SimReport> {
        assert!(
            i < self.suite_count(),
            "suite index {i} out of range (suite_count = {})",
            self.suite_count()
        );
        self.records[i * self.scenarios_per_suite..(i + 1) * self.scenarios_per_suite]
            .iter()
            .map(|r| &r.report)
            .collect()
    }

    /// Number of (workload, seed)-suites.
    pub fn suite_count(&self) -> usize {
        self.records
            .len()
            .checked_div(self.scenarios_per_suite)
            .unwrap_or(0)
    }

    /// Per-suite OAE of each scenario normalized by scenario 0's OAE —
    /// the Figure 3 presentation (rows = suites, columns = scenarios 1..).
    pub fn oae_normalized_to_first(&self) -> Vec<Vec<f64>> {
        self.suites()
            .map(|suite| {
                let base = suite[0].report.oae.max(1e-9);
                suite[1..].iter().map(|r| r.report.oae / base).collect()
            })
            .collect()
    }

    /// Mean OAE per scenario column across all suites.
    pub fn mean_oae_by_scenario(&self) -> Vec<f64> {
        self.column_summary(mean)
    }

    /// Geometric-mean OAE per scenario column across all suites.
    pub fn geomean_oae_by_scenario(&self) -> Vec<f64> {
        self.column_summary(geomean)
    }

    fn column_summary(&self, f: fn(&[f64]) -> f64) -> Vec<f64> {
        (0..self.scenarios_per_suite)
            .map(|col| {
                let column: Vec<f64> = self.suites().map(|suite| suite[col].report.oae).collect();
                f(&column)
            })
            .collect()
    }

    /// The whole set as CSV (header + one row per record).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(csv_header());
        out.push('\n');
        for r in &self.records {
            out.push_str(&report_to_csv_row(&r.report, r.seed));
            out.push('\n');
        }
        out
    }

    /// The whole set as a JSON array of report objects.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .records
            .iter()
            .map(|r| report_to_json(&r.report, r.seed))
            .collect();
        format!("[{}]", rows.join(","))
    }
}

/// Builder for a grid of simulations: `workloads × scenarios × seeds`,
/// run in parallel over all cores via streaming sessions.
///
/// ```
/// use stbpu_engine::{Experiment, Scenario};
/// use stbpu_sim::Protection;
///
/// let set = Experiment::new("demo")
///     .workloads(["541.leela", "505.mcf"])
///     .scenario(Scenario::new("skl", Protection::Unprotected))
///     .scenario(Scenario::new("tage64", Protection::Unprotected))
///     .branches(3_000)
///     .seeds([1, 2])
///     .run()
///     .unwrap();
/// assert_eq!(set.records().len(), 2 * 2 * 2);
/// assert_eq!(set.suite_count(), 4);
/// ```
pub struct Experiment {
    name: String,
    registry: ModelRegistry,
    workloads: Vec<Workload>,
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
    branches: usize,
    warmup: Warmup,
    threads: Option<usize>,
    interval: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
}

impl Experiment {
    /// A named experiment with defaults: no workloads/scenarios yet,
    /// seed 42, 20 000 branches, 10 % warm-up, threads derived per source,
    /// no interval series, the standard registry.
    pub fn new(name: &str) -> Self {
        Experiment {
            name: name.to_string(),
            registry: ModelRegistry::standard(),
            workloads: Vec::new(),
            scenarios: Vec::new(),
            seeds: vec![42],
            branches: 20_000,
            warmup: Warmup::Fraction(0.1),
            threads: None,
            interval: None,
            checkpoint_dir: None,
            checkpoint_every: 1_000_000,
        }
    }

    /// The experiment name (used in logs and output labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the model registry (to use custom-registered models).
    pub fn registry(mut self, registry: ModelRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Adds one workload of any kind.
    pub fn add_workload(mut self, workload: Workload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds one named workload profile.
    pub fn workload(self, name: &str) -> Self {
        self.add_workload(Workload::Named(name.to_string()))
    }

    /// Adds several named workload profiles.
    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for n in names {
            self.workloads.push(Workload::Named(n.as_ref().to_string()));
        }
        self
    }

    /// Adds a custom (non-registered) workload profile.
    pub fn profile(self, profile: WorkloadProfile) -> Self {
        self.add_workload(Workload::Profile(profile))
    }

    /// Adds an already-materialized trace; workers stream views of it
    /// without cloning the event vector.
    pub fn trace(self, trace: impl Into<Arc<Trace>>) -> Self {
        self.add_workload(Workload::Trace(trace.into()))
    }

    /// Adds a line-format trace file, streamed from disk.
    pub fn trace_file(self, path: impl Into<std::path::PathBuf>) -> Self {
        self.add_workload(Workload::File(path.into()))
    }

    /// Adds a custom source-factory workload.
    pub fn source<F>(self, name: &str, factory: F) -> Self
    where
        F: Fn(u64, usize) -> Box<dyn EventSource + Send> + Send + Sync + 'static,
    {
        self.add_workload(Workload::custom(name, factory))
    }

    /// Adds one scenario cell.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Adds several scenario cells (e.g. [`Scenario::fig3`]).
    pub fn scenarios<I: IntoIterator<Item = Scenario>>(mut self, scenarios: I) -> Self {
        self.scenarios.extend(scenarios);
        self
    }

    /// Cross-product convenience: every model spec under one protection.
    pub fn models_under<I, S>(mut self, protection: Protection, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for s in specs {
            self.scenarios.push(Scenario::new(s.as_ref(), protection));
        }
        self
    }

    /// Sets a single seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds = vec![seed];
        self
    }

    /// Sets multiple seeds (each (workload, seed) pair is one suite).
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Branches generated per workload stream (generator-backed workloads
    /// only; traces and files replay their stored stream).
    pub fn branches(mut self, branches: usize) -> Self {
        self.branches = branches;
        self
    }

    /// Warm-up fraction (statistics reset after this share of branches).
    /// Needs streams that declare a branch count — generator-backed
    /// workloads always do; for hint-less trace files or custom sources
    /// use [`Experiment::warmup_branches`].
    pub fn warmup(mut self, warmup_frac: f64) -> Self {
        self.warmup = Warmup::Fraction(warmup_frac);
        self
    }

    /// Absolute warm-up budget in branch events — works for any stream,
    /// including hint-less trace files and custom sources.
    pub fn warmup_branches(mut self, branches: u64) -> Self {
        self.warmup = Warmup::Branches(branches);
        self
    }

    /// Explicit hardware-thread provision, validated against every stream
    /// (default: taken from each source's declared thread count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Closes an OAE-over-time window every `branches` branch events;
    /// every [`RunRecord`] then carries the window series.
    pub fn interval(mut self, branches: u64) -> Self {
        self.interval = Some(branches);
        self
    }

    /// Makes the run killable: completed suites stream into
    /// `completed.jsonl` under `dir` and in-flight cells persist periodic
    /// `.stck` checkpoints there, so rerunning the identical experiment
    /// after a crash (or SIGKILL) resumes instead of restarting and
    /// produces byte-identical output. The directory is created on
    /// demand; reusing it for a *different* experiment is rejected via a
    /// manifest fingerprint.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// How often (in branch events per cell) in-flight cell checkpoints
    /// are refreshed when [`Experiment::checkpoint_dir`] is set. Default:
    /// 1 000 000.
    pub fn checkpoint_every(mut self, branches: u64) -> Self {
        self.checkpoint_every = branches.max(1);
        self
    }

    /// Runs the whole grid in parallel and collects a [`RunSet`].
    ///
    /// Each (workload, seed, scenario) cell runs a [`SimSession`] over a
    /// streaming source; generator-backed suites up to 1M branches
    /// generate once and replay views,
    /// larger ones stream each cell in O(1) memory. Suites are distributed
    /// over all cores. Workload names, file paths, model specs and
    /// protections are validated before any simulation starts.
    pub fn run(self) -> Result<RunSet, EngineError> {
        if self.workloads.is_empty() {
            return Err(EngineError::EmptyGrid("workloads"));
        }
        if self.scenarios.is_empty() {
            return Err(EngineError::EmptyGrid("scenarios"));
        }
        if self.seeds.is_empty() {
            return Err(EngineError::EmptyGrid("seeds"));
        }
        // Validate the grid up front: fail fast on the first bad name
        // instead of deep inside a worker thread.
        for w in &self.workloads {
            w.validate()?;
        }
        let mut checked = std::collections::BTreeSet::new();
        for sc in &self.scenarios {
            if checked.insert(sc.model.as_str()) {
                self.registry.build(&sc.model, 0)?;
            }
        }

        let scenarios_per_suite = self.scenarios.len();
        let jobs: Vec<(Workload, u64)> = self
            .workloads
            .iter()
            .flat_map(|w| self.seeds.iter().map(move |&s| (w.clone(), s)))
            .collect();

        if let Some(dir) = self.checkpoint_dir.clone() {
            return self.run_checkpointed(&dir, &jobs, scenarios_per_suite);
        }

        let suites: Vec<Result<Vec<RunRecord>, EngineError>> =
            parallel_map(jobs, |(workload, seed)| {
                // Generator-backed workloads would regenerate an identical
                // stream for every scenario; when the suite fits in memory,
                // materialize once and let each scenario replay a view —
                // bit-identical events (generate() and into_source() share
                // the stepping machinery) at one generation cost. Above
                // the cap, stream per cell so memory stays O(1).
                let shared: Option<Trace> =
                    if matches!(workload, Workload::Named(_) | Workload::Profile(_))
                        && self.scenarios.len() > 1
                        && self.branches <= MATERIALIZE_SUITE_CAP
                    {
                        let mut src = workload.open(*seed, self.branches)?;
                        Some(
                            src.collect_trace()
                                .map_err(|e| EngineError::Sim(e.into()))?,
                        )
                    } else {
                        None
                    };
                self.scenarios
                    .iter()
                    .map(|sc| {
                        let mut source: Box<dyn EventSource + '_> = match &shared {
                            Some(t) => Box::new(t.source()),
                            None => workload.open(*seed, self.branches)?,
                        };
                        let mut model = self.registry.build(&sc.model, *seed)?;
                        let threads = self.threads.or(match source.thread_count() {
                            0 => None, // undeclared: session provisions the max
                            t => Some(t),
                        });
                        // `&mut ModelCore` (not `&mut dyn Bpu`): the
                        // session monomorphizes over the sealed enum.
                        let mut session = SimSession::new(
                            &mut model,
                            sc.protection,
                            SessionOptions {
                                warmup: self.warmup,
                                threads,
                                interval: self.interval,
                                workload: None, // take the source's name
                            },
                        )
                        .map_err(EngineError::from)?;
                        let mut recorder = IntervalRecorder::new();
                        if self.interval.is_some() {
                            session.attach(&mut recorder);
                        }
                        session.run(source.as_mut()).map_err(EngineError::from)?;
                        let report = session.finish();
                        Ok(RunRecord {
                            workload: workload.label(),
                            model_spec: sc.model.clone(),
                            seed: *seed,
                            report,
                            intervals: recorder.into_windows(),
                        })
                    })
                    .collect()
            });

        let mut records = Vec::with_capacity(suites.len() * scenarios_per_suite);
        for suite in suites {
            records.extend(suite?);
        }
        Ok(RunSet {
            records,
            scenarios_per_suite,
        })
    }

    /// Everything that changes the grid's results, as one canonical
    /// string — the manifest fingerprint that stops two different
    /// experiments from sharing (and corrupting) one checkpoint
    /// directory. `checkpoint_every` is deliberately excluded: it only
    /// changes how often state is saved, never what is computed.
    fn grid_fingerprint(&self) -> String {
        let workloads: Vec<String> = self.workloads.iter().map(|w| w.label()).collect();
        let scenarios: Vec<String> = self
            .scenarios
            .iter()
            .map(|sc| format!("{}:{}", sc.model, sc.protection.code()))
            .collect();
        let seeds: Vec<String> = self.seeds.iter().map(|s| s.to_string()).collect();
        let warm = match self.warmup {
            Warmup::Fraction(f) => format!("f{:016x}", f.to_bits()),
            Warmup::Branches(n) => format!("b{n}"),
        };
        format!(
            "v1|{}|{}|{}|{}|{}|{}|{}",
            workloads.join(";"),
            scenarios.join(";"),
            seeds.join(";"),
            self.branches,
            warm,
            self.interval
                .map(|n| n.to_string())
                .unwrap_or_else(|| "none".to_string()),
            self.threads
                .map(|n| n.to_string())
                .unwrap_or_else(|| "auto".to_string()),
        )
    }

    /// The killable grid path: suites stream to `completed.jsonl` as they
    /// finish, in-flight cells checkpoint periodically, and a rerun of
    /// the identical experiment picks up where the dead process stopped.
    fn run_checkpointed(
        &self,
        dir: &Path,
        jobs: &[(Workload, u64)],
        scenarios_per_suite: usize,
    ) -> Result<RunSet, EngineError> {
        let io_err = |e: std::io::Error| EngineError::Checkpoint(e.to_string());
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let key = format!("{:016x}", fnv1a64(self.grid_fingerprint().as_bytes()));

        // Manifest: create on first run, verify on resume.
        let manifest = dir.join("manifest.json");
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let stored = crate::minijson::Json::parse(&text)
                    .ok()
                    .and_then(|j| j.get("key").and_then(|k| k.as_str().map(String::from)));
                if stored.as_deref() != Some(key.as_str()) {
                    return Err(EngineError::Checkpoint(format!(
                        "checkpoint directory {} belongs to a different experiment \
                         (manifest fingerprint mismatch) — point --checkpoint-dir at a \
                         fresh directory or rerun the original command",
                        dir.display()
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let body = format!(
                    "{{\"version\":\"1\",\"name\":{},\"key\":\"{key}\",\"suites\":\"{}\"}}\n",
                    crate::minijson::escape(&self.name),
                    jobs.len()
                );
                let tmp = dir.join("manifest.json.tmp");
                std::fs::write(&tmp, body).map_err(io_err)?;
                std::fs::rename(&tmp, &manifest).map_err(io_err)?;
            }
            Err(e) => return Err(io_err(e)),
        }

        // Replay the completed-suite log (ignoring any partial trailing
        // line a kill left behind), then clear now-stale cell files.
        let log_path = dir.join("completed.jsonl");
        let mut results: Vec<Option<Vec<RunRecord>>> = Vec::with_capacity(jobs.len());
        results.resize_with(jobs.len(), || None);
        if let Ok(text) = std::fs::read_to_string(&log_path) {
            for line in text.lines() {
                if let Some((i, recs)) = suite_from_json_line(line) {
                    if i < jobs.len() && recs.len() == scenarios_per_suite {
                        for sidx in 0..scenarios_per_suite {
                            let _ = std::fs::remove_file(cell_path(dir, i, sidx));
                        }
                        results[i] = Some(recs);
                    }
                }
            }
        }
        let todo: Vec<usize> = (0..jobs.len()).filter(|&i| results[i].is_none()).collect();

        if !todo.is_empty() {
            let mut log = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&log_path)
                .map_err(io_err)?;
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Result<Vec<RunRecord>, EngineError>)>();
            let mut first_err: Option<EngineError> = None;
            std::thread::scope(|s| {
                let workers = std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
                    .min(todo.len());
                for _ in 0..workers {
                    let tx = tx.clone();
                    let (next, todo) = (&next, todo.as_slice());
                    s.spawn(move || loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= todo.len() {
                            break;
                        }
                        let i = todo[t];
                        let (workload, seed) = &jobs[i];
                        let res = self.run_suite_checkpointed(dir, i, workload, *seed);
                        if tx.send((i, res)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                // Main thread is the only log writer: one durable line
                // per finished suite, then its cell files are obsolete.
                for (i, res) in rx {
                    match res {
                        Ok(recs) => {
                            let line = suite_to_json_line(i, &recs);
                            let write = writeln!(log, "{line}").and_then(|()| log.flush());
                            if let Err(e) = write {
                                first_err.get_or_insert(io_err(e));
                                continue;
                            }
                            for sidx in 0..scenarios_per_suite {
                                let _ = std::fs::remove_file(cell_path(dir, i, sidx));
                            }
                            results[i] = Some(recs);
                        }
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                }
            });
            if let Some(e) = first_err {
                return Err(e);
            }
        }

        let mut records = Vec::with_capacity(jobs.len() * scenarios_per_suite);
        for r in results {
            records.extend(r.ok_or_else(|| {
                EngineError::Checkpoint("a suite finished without reporting".to_string())
            })?);
        }
        Ok(RunSet {
            records,
            scenarios_per_suite,
        })
    }

    /// One (workload, seed) suite under the checkpointed path: every cell
    /// streams (no shared materialization — cells must be individually
    /// resumable) and saves periodic in-flight checkpoints.
    fn run_suite_checkpointed(
        &self,
        dir: &Path,
        suite: usize,
        workload: &Workload,
        seed: u64,
    ) -> Result<Vec<RunRecord>, EngineError> {
        self.scenarios
            .iter()
            .enumerate()
            .map(|(sidx, sc)| {
                run_cell(
                    &self.registry,
                    sc,
                    workload,
                    seed,
                    self.branches,
                    self.warmup,
                    self.threads,
                    self.interval,
                    &cell_path(dir, suite, sidx),
                    self.checkpoint_every,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_trace::{profiles, TraceGenerator};

    #[test]
    fn fig3_preset_runs_in_legend_order() {
        let set = Experiment::new("fig3-unit")
            .workload("520.omnetpp")
            .scenarios(Scenario::fig3())
            .branches(3_000)
            .seed(3)
            .run()
            .unwrap();
        let labels: Vec<&str> = set.records().iter().map(|r| r.report.protection).collect();
        assert_eq!(
            labels,
            [
                "baseline",
                "STBPU",
                "ucode protection",
                "ucode protection2",
                "conservative"
            ]
        );
        assert_eq!(set.suite_count(), 1);
        assert_eq!(set.oae_normalized_to_first()[0].len(), 4);
    }

    #[test]
    fn grid_order_is_workload_seed_scenario() {
        let set = Experiment::new("grid")
            .workloads(["541.leela", "505.mcf"])
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(1_000)
            .seeds([1, 2])
            .run()
            .unwrap();
        let got: Vec<(String, u64)> = set
            .records()
            .iter()
            .map(|r| (r.workload.clone(), r.seed))
            .collect();
        assert_eq!(
            got,
            [
                ("541.leela".to_string(), 1),
                ("541.leela".to_string(), 2),
                ("505.mcf".to_string(), 1),
                ("505.mcf".to_string(), 2),
            ]
        );
    }

    #[test]
    fn empty_grids_rejected() {
        assert_eq!(
            Experiment::new("e")
                .scenario(Scenario::new("skl", Protection::Unprotected))
                .run()
                .unwrap_err(),
            EngineError::EmptyGrid("workloads")
        );
        assert_eq!(
            Experiment::new("e").workload("505.mcf").run().unwrap_err(),
            EngineError::EmptyGrid("scenarios")
        );
    }

    #[test]
    fn bad_names_fail_before_simulation() {
        let err = Experiment::new("e")
            .workload("not_a_workload")
            .scenarios(Scenario::fig3())
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::UnknownWorkload("not_a_workload".to_string())
        );

        let err = Experiment::new("e")
            .workload("505.mcf")
            .scenario(Scenario::new("warp_drive", Protection::Unprotected))
            .run()
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownModel { .. }));

        let err = Experiment::new("e")
            .trace_file("/does/not/exist.trace")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .run()
            .unwrap_err();
        assert!(matches!(err, EngineError::WorkloadSource(_)));
    }

    #[test]
    fn empty_seeds_rejected() {
        let err = Experiment::new("e")
            .workload("505.mcf")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .seeds(Vec::new())
            .run()
            .unwrap_err();
        assert_eq!(err, EngineError::EmptyGrid("seeds"));
    }

    #[test]
    #[should_panic(expected = "suite index 1 out of range")]
    fn suite_reports_bounds_checked() {
        let set = Experiment::new("b")
            .workload("505.mcf")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(500)
            .run()
            .unwrap();
        let _ = set.suite_reports(1);
    }

    #[test]
    fn scenario_parse_round_trip() {
        let sc = Scenario::parse("st_skl@r=0.01:stbpu").unwrap();
        assert_eq!(sc.model, "st_skl@r=0.01");
        assert_eq!(sc.protection, Protection::Stbpu);
        assert_eq!(
            Scenario::parse("skl").unwrap_err(),
            EngineError::InvalidScenario("skl".to_string())
        );
        assert!(matches!(
            Scenario::parse("skl:warp").unwrap_err(),
            EngineError::UnknownProtection(_)
        ));
    }

    #[test]
    fn serialization_shapes() {
        let set = Experiment::new("ser")
            .workload("505.mcf")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(1_000)
            .seed(5)
            .run()
            .unwrap();
        let csv = set.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().next().unwrap().starts_with("workload,model"));
        let json = set.to_json();
        assert!(json.starts_with("[{") && json.ends_with("}]"));
        assert!(json.contains("\"workload\":\"505.mcf\""));
    }

    #[test]
    fn matches_direct_simulation_exactly() {
        // The engine path (streamed per cell) must reproduce a hand-rolled
        // materialized run bit-for-bit.
        use stbpu_predictors::skl_baseline;
        let set = Experiment::new("ref")
            .workload("525.x264")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(5_000)
            .seed(11)
            .warmup(0.1)
            .run()
            .unwrap();

        let trace = TraceGenerator::new(profiles::by_name("525.x264").unwrap(), 11).generate(5_000);
        let mut model = skl_baseline();
        let reference = stbpu_sim::simulate(&mut model, Protection::Unprotected, &trace, 0.1);
        let got = &set.records()[0].report;
        assert_eq!(got.oae, reference.oae);
        assert_eq!(got.mispredictions, reference.mispredictions);
        assert_eq!(got.evictions, reference.evictions);
    }

    #[test]
    fn shared_trace_workload_matches_generator_workload() {
        let trace = TraceGenerator::new(profiles::by_name("541.leela").unwrap(), 9).generate(4_000);
        let via_trace = Experiment::new("t")
            .trace(trace)
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .seed(9)
            .run()
            .unwrap();
        let via_name = Experiment::new("n")
            .workload("541.leela")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(4_000)
            .seed(9)
            .run()
            .unwrap();
        assert_eq!(
            via_trace.records()[0].report.oae,
            via_name.records()[0].report.oae
        );
        assert_eq!(via_trace.records()[0].workload, "541.leela");
    }

    #[test]
    fn interval_series_lands_in_records() {
        let set = Experiment::new("iv")
            .workload("505.mcf")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(4_000)
            .interval(1_000)
            .warmup(0.0)
            .seed(2)
            .run()
            .unwrap();
        let rec = &set.records()[0];
        assert_eq!(rec.intervals.len(), 4);
        assert_eq!(rec.intervals.iter().map(|w| w.branches).sum::<u64>(), 4_000);
        assert!(rec.intervals.iter().all(|w| w.oae() > 0.4));
        // Without .interval() the series is empty.
        let plain = Experiment::new("plain")
            .workload("505.mcf")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(1_000)
            .run()
            .unwrap();
        assert!(plain.records()[0].intervals.is_empty());
    }

    #[test]
    fn hintless_sources_need_warmup_branches() {
        // A source without a branch hint (e.g. a headerless trace file)
        // cannot resolve a fractional warm-up…
        struct Hintless(stbpu_trace::TraceSource<'static>);
        impl EventSource for Hintless {
            fn name(&self) -> &str {
                "hintless"
            }
            fn thread_count(&self) -> usize {
                0
            }
            fn branch_hint(&self) -> Option<u64> {
                None
            }
            fn next_event(
                &mut self,
            ) -> Result<Option<stbpu_trace::TraceEvent>, stbpu_trace::SourceError> {
                self.0.next_event()
            }
        }
        fn hintless_exp(name: &str) -> Experiment {
            let trace: &'static Trace = Box::leak(Box::new(
                TraceGenerator::new(profiles::by_name("505.mcf").unwrap(), 3).generate(1_000),
            ));
            Experiment::new(name)
                .source("hintless", move |_, _| Box::new(Hintless(trace.source())))
                .scenario(Scenario::new("skl", Protection::Unprotected))
        }
        let err = hintless_exp("frac").run().unwrap_err();
        assert_eq!(
            err,
            EngineError::Sim(stbpu_sim::SimError::WarmupNeedsBranchCount)
        );
        // …but an absolute warm-up budget works on any stream.
        let set = hintless_exp("abs").warmup_branches(200).run().unwrap();
        assert_eq!(set.records()[0].report.branches, 800);
    }

    #[test]
    fn streamed_and_materialized_suites_agree_across_the_cap() {
        // Multi-scenario suites materialize once below the cap and stream
        // per cell above it; a single-scenario grid always streams. All
        // paths must agree bit-for-bit.
        let single = Experiment::new("stream")
            .workload("541.leela")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(3_000)
            .seed(8)
            .run()
            .unwrap();
        let multi = Experiment::new("materialize")
            .workload("541.leela")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .scenario(Scenario::new("skl", Protection::Ucode1))
            .branches(3_000)
            .seed(8)
            .run()
            .unwrap();
        assert_eq!(
            single.records()[0].report.oae,
            multi.records()[0].report.oae
        );
        assert_eq!(
            single.records()[0].report.mispredictions,
            multi.records()[0].report.mispredictions
        );
    }

    fn ckpt_experiment(name: &str, dir: &std::path::Path) -> Experiment {
        Experiment::new(name)
            .workloads(["541.leela", "505.mcf"])
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .scenario(Scenario::new("st_skl@r=0.05", Protection::Stbpu))
            .branches(6_000)
            .seeds([1, 2])
            .interval(2_000)
            .checkpoint_dir(dir)
            .checkpoint_every(1_500)
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("stbpu-grid-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn checkpointed_grid_matches_plain_grid_exactly() {
        let dir = tmpdir("plain");
        let plain = Experiment::new("ref")
            .workloads(["541.leela", "505.mcf"])
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .scenario(Scenario::new("st_skl@r=0.05", Protection::Stbpu))
            .branches(6_000)
            .seeds([1, 2])
            .interval(2_000)
            .run()
            .unwrap();
        let ckpt = ckpt_experiment("ckpt", &dir).run().unwrap();
        assert_eq!(plain.to_csv(), ckpt.to_csv());
        for (a, b) in plain.records().iter().zip(ckpt.records()) {
            assert_eq!(a.report, b.report);
            assert_eq!(a.intervals, b.intervals);
        }
        // Completed run: one log line per suite, no leftover cell files.
        let log = std::fs::read_to_string(dir.join("completed.jsonl")).unwrap();
        assert_eq!(log.lines().count(), 4);
        assert!(!std::fs::read_dir(&dir).unwrap().any(|e| e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .starts_with("cell-")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_run_resumes_to_identical_output() {
        let dir = tmpdir("resume");
        let full = ckpt_experiment("a", &dir).run().unwrap();
        let log_path = dir.join("completed.jsonl");
        let log = std::fs::read_to_string(&log_path).unwrap();

        // Simulate a kill after the first suite landed, mid-write of the
        // second: keep line 1 plus a truncated prefix of line 2.
        let lines: Vec<&str> = log.lines().collect();
        let truncated = format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]);
        std::fs::write(&log_path, truncated).unwrap();

        let resumed = ckpt_experiment("a", &dir).run().unwrap();
        assert_eq!(full.to_csv(), resumed.to_csv());
        for (a, b) in full.records().iter().zip(resumed.records()) {
            assert_eq!(a.report, b.report);
            assert_eq!(a.intervals, b.intervals);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_flight_cell_checkpoint_resumes_bit_identically() {
        let dir = tmpdir("cell");
        std::fs::create_dir_all(&dir).unwrap();
        // Plant a genuine mid-stream checkpoint where suite 0 / scenario 0
        // of the experiment will look for it — as if the process died with
        // the cell half done.
        let reg = ModelRegistry::standard();
        let wl = Workload::Named("541.leela".to_string());
        let model = reg.build("skl", 1).unwrap();
        let mut source = wl.open(1, 6_000).unwrap();
        let threads = match source.thread_count() {
            0 => None,
            t => Some(t),
        };
        let mut session = stbpu_sim::OwnedSession::new(
            model,
            Protection::Unprotected,
            SessionOptions {
                warmup: Warmup::Fraction(0.1),
                threads,
                interval: Some(2_000),
                workload: None,
            },
        )
        .unwrap();
        session.begin(source.name(), source.branch_hint()).unwrap();
        let mut fed = 0u64;
        let mut buf = Vec::new();
        while session.branches_seen() < 3_000 {
            let n = source.next_batch(&mut buf, 64).unwrap();
            assert!(n > 0);
            session.feed_batch(&buf).unwrap();
            fed += n as u64;
        }
        let cp = stbpu_sim::Checkpoint::capture(&session, "skl", 1, fed).unwrap();
        cp.save(&cell_path(&dir, 0, 0)).unwrap();
        drop(session);

        let reference = ckpt_experiment("b", &tmpdir("cell-ref")).run().unwrap();
        let resumed = ckpt_experiment("b", &dir).run().unwrap();
        assert_eq!(reference.to_csv(), resumed.to_csv());
        assert_eq!(
            reference.records()[0].intervals,
            resumed.records()[0].intervals
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(tmpdir("cell-ref"));
    }

    #[test]
    fn checkpoint_dir_rejects_a_different_experiment() {
        let dir = tmpdir("mismatch");
        ckpt_experiment("a", &dir).run().unwrap();
        let err = ckpt_experiment("a", &dir).seed(99).run().unwrap_err();
        assert!(matches!(err, EngineError::Checkpoint(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn custom_source_workload_runs() {
        let set = Experiment::new("custom")
            .source("gen-proxy", |seed, branches| {
                let p = profiles::by_name("505.mcf").unwrap();
                Box::new(TraceGenerator::new(p, seed).into_source(branches))
            })
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(2_000)
            .seed(4)
            .run()
            .unwrap();
        assert_eq!(set.records()[0].workload, "gen-proxy");
        assert_eq!(set.records()[0].report.branches, 1_800); // 10 % warm-up
    }
}

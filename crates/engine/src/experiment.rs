//! The declarative scenario/experiment API: declare a
//! `workloads × scenarios × seeds` grid, run it in parallel, get a
//! structured [`RunSet`] back.

use crate::error::EngineError;
use crate::parallel::parallel_map;
use crate::registry::ModelRegistry;
use crate::report::{csv_header, protection_from_str, report_to_csv_row, report_to_json};
use crate::stats::{geomean, mean};
use stbpu_sim::{simulate_with, Protection, SimOptions, SimReport};
use stbpu_trace::{profiles, Trace, TraceGenerator, WorkloadProfile};

/// One (model, protection) cell of an experiment — the unit the old
/// `fig3_schemes()` tuples and every per-binary model loop collapsed into.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Registry model spec (`"skl"`, `"st_skl@r=0.05"`, …).
    pub model: String,
    /// Protection policy the simulator enforces around the model.
    pub protection: Protection,
}

impl Scenario {
    /// A scenario from a model spec string and a [`Protection`].
    pub fn new(model: &str, protection: Protection) -> Self {
        Scenario {
            model: model.to_string(),
            protection,
        }
    }

    /// A scenario from `"model:protection"` (e.g. `"st_skl@r=0.01:stbpu"`).
    pub fn parse(s: &str) -> Result<Self, EngineError> {
        let (model, protection) = s
            .rsplit_once(':')
            .ok_or_else(|| EngineError::UnknownProtection(format!("missing ':' in '{s}'")))?;
        Ok(Scenario::new(
            model.trim(),
            protection_from_str(protection)?,
        ))
    }

    /// The five Figure 3 schemes, in legend order.
    pub fn fig3() -> Vec<Scenario> {
        vec![
            Scenario::new("skl", Protection::Unprotected),
            Scenario::new("st_skl@r=0.05", Protection::Stbpu),
            Scenario::new("skl", Protection::Ucode1),
            Scenario::new("skl", Protection::Ucode2),
            Scenario::new("conservative", Protection::Conservative),
        ]
    }
}

/// Runs every scenario over one already-generated trace, in order.
/// `seed` keys the models; the caller owns trace generation.
pub fn run_scenarios(
    registry: &ModelRegistry,
    trace: &Trace,
    scenarios: &[Scenario],
    seed: u64,
    warmup_frac: f64,
) -> Result<Vec<SimReport>, EngineError> {
    let opts = SimOptions {
        warmup_frac,
        // Derive once: thread_count() scans the whole trace, and every
        // scenario runs over the same immutable trace.
        threads: Some(trace.thread_count().max(1)),
    };
    scenarios
        .iter()
        .map(|sc| {
            let mut model = registry.build(&sc.model, seed)?;
            Ok(simulate_with(model.as_mut(), sc.protection, trace, &opts)?)
        })
        .collect()
}

/// One completed cell of an experiment grid.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Workload profile name.
    pub workload: String,
    /// Model spec string the cell was built from.
    pub model_spec: String,
    /// Seed that keyed trace generation and the model.
    pub seed: u64,
    /// The simulation result.
    pub report: SimReport,
}

/// Results of an [`Experiment`] run, in grid order:
/// workloads (outer) × seeds × scenarios (inner).
#[derive(Clone, Debug)]
pub struct RunSet {
    records: Vec<RunRecord>,
    scenarios_per_suite: usize,
}

impl RunSet {
    /// All records, grid-ordered.
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Iterates (workload, seed)-suites: each yielded slice holds one
    /// record per scenario, in scenario order.
    pub fn suites(&self) -> impl Iterator<Item = &[RunRecord]> {
        self.records.chunks(self.scenarios_per_suite)
    }

    /// Reports of suite `i`, in scenario order (legend order for Figure 3
    /// presets).
    ///
    /// # Panics
    ///
    /// Panics if `i >= suite_count()`.
    pub fn suite_reports(&self, i: usize) -> Vec<&SimReport> {
        assert!(
            i < self.suite_count(),
            "suite index {i} out of range (suite_count = {})",
            self.suite_count()
        );
        self.records[i * self.scenarios_per_suite..(i + 1) * self.scenarios_per_suite]
            .iter()
            .map(|r| &r.report)
            .collect()
    }

    /// Number of (workload, seed)-suites.
    pub fn suite_count(&self) -> usize {
        self.records
            .len()
            .checked_div(self.scenarios_per_suite)
            .unwrap_or(0)
    }

    /// Per-suite OAE of each scenario normalized by scenario 0's OAE —
    /// the Figure 3 presentation (rows = suites, columns = scenarios 1..).
    pub fn oae_normalized_to_first(&self) -> Vec<Vec<f64>> {
        self.suites()
            .map(|suite| {
                let base = suite[0].report.oae.max(1e-9);
                suite[1..].iter().map(|r| r.report.oae / base).collect()
            })
            .collect()
    }

    /// Mean OAE per scenario column across all suites.
    pub fn mean_oae_by_scenario(&self) -> Vec<f64> {
        self.column_summary(mean)
    }

    /// Geometric-mean OAE per scenario column across all suites.
    pub fn geomean_oae_by_scenario(&self) -> Vec<f64> {
        self.column_summary(geomean)
    }

    fn column_summary(&self, f: fn(&[f64]) -> f64) -> Vec<f64> {
        (0..self.scenarios_per_suite)
            .map(|col| {
                let column: Vec<f64> = self.suites().map(|suite| suite[col].report.oae).collect();
                f(&column)
            })
            .collect()
    }

    /// The whole set as CSV (header + one row per record).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(csv_header());
        out.push('\n');
        for r in &self.records {
            out.push_str(&report_to_csv_row(&r.report, r.seed));
            out.push('\n');
        }
        out
    }

    /// The whole set as a JSON array of report objects.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .records
            .iter()
            .map(|r| report_to_json(&r.report, r.seed))
            .collect();
        format!("[{}]", rows.join(","))
    }
}

#[derive(Clone)]
enum WorkloadSel {
    Named(String),
    Custom(WorkloadProfile),
}

impl WorkloadSel {
    fn name(&self) -> &str {
        match self {
            WorkloadSel::Named(n) => n,
            WorkloadSel::Custom(p) => p.name,
        }
    }

    fn resolve(&self) -> Result<WorkloadProfile, EngineError> {
        match self {
            WorkloadSel::Named(n) => profiles::by_name(n)
                .copied()
                .ok_or_else(|| EngineError::UnknownWorkload(n.clone())),
            WorkloadSel::Custom(p) => Ok(*p),
        }
    }
}

/// Builder for a grid of simulations: `workloads × scenarios × seeds`,
/// run in parallel over all cores.
///
/// ```
/// use stbpu_engine::{Experiment, Scenario};
/// use stbpu_sim::Protection;
///
/// let set = Experiment::new("demo")
///     .workloads(["541.leela", "505.mcf"])
///     .scenario(Scenario::new("skl", Protection::Unprotected))
///     .scenario(Scenario::new("tage64", Protection::Unprotected))
///     .branches(3_000)
///     .seeds([1, 2])
///     .run()
///     .unwrap();
/// assert_eq!(set.records().len(), 2 * 2 * 2);
/// assert_eq!(set.suite_count(), 4);
/// ```
pub struct Experiment {
    name: String,
    registry: ModelRegistry,
    workloads: Vec<WorkloadSel>,
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
    branches: usize,
    warmup_frac: f64,
    threads: Option<usize>,
}

impl Experiment {
    /// A named experiment with defaults: no workloads/scenarios yet,
    /// seed 42, 20 000 branches, 10 % warm-up, threads derived per trace,
    /// the standard registry.
    pub fn new(name: &str) -> Self {
        Experiment {
            name: name.to_string(),
            registry: ModelRegistry::standard(),
            workloads: Vec::new(),
            scenarios: Vec::new(),
            seeds: vec![42],
            branches: 20_000,
            warmup_frac: 0.1,
            threads: None,
        }
    }

    /// The experiment name (used in logs and output labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the model registry (to use custom-registered models).
    pub fn registry(mut self, registry: ModelRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Adds one named workload profile.
    pub fn workload(mut self, name: &str) -> Self {
        self.workloads.push(WorkloadSel::Named(name.to_string()));
        self
    }

    /// Adds several named workload profiles.
    pub fn workloads<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for n in names {
            self.workloads
                .push(WorkloadSel::Named(n.as_ref().to_string()));
        }
        self
    }

    /// Adds a custom (non-registered) workload profile.
    pub fn profile(mut self, profile: WorkloadProfile) -> Self {
        self.workloads.push(WorkloadSel::Custom(profile));
        self
    }

    /// Adds one scenario cell.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Adds several scenario cells (e.g. [`Scenario::fig3`]).
    pub fn scenarios<I: IntoIterator<Item = Scenario>>(mut self, scenarios: I) -> Self {
        self.scenarios.extend(scenarios);
        self
    }

    /// Cross-product convenience: every model spec under one protection.
    pub fn models_under<I, S>(mut self, protection: Protection, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        for s in specs {
            self.scenarios.push(Scenario::new(s.as_ref(), protection));
        }
        self
    }

    /// Sets a single seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds = vec![seed];
        self
    }

    /// Sets multiple seeds (each (workload, seed) pair is one suite).
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Branches generated per workload trace.
    pub fn branches(mut self, branches: usize) -> Self {
        self.branches = branches;
        self
    }

    /// Warm-up fraction (statistics reset after this share of branches).
    pub fn warmup(mut self, warmup_frac: f64) -> Self {
        self.warmup_frac = warmup_frac;
        self
    }

    /// Explicit hardware-thread provision, validated against every trace
    /// (default: derived per trace).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Runs the whole grid in parallel and collects a [`RunSet`].
    ///
    /// Each (workload, seed) suite generates its trace once and runs every
    /// scenario over it; suites are distributed over all cores. Workload
    /// names, model specs and protections are validated before any
    /// simulation starts.
    pub fn run(self) -> Result<RunSet, EngineError> {
        if self.workloads.is_empty() {
            return Err(EngineError::EmptyGrid("workloads"));
        }
        if self.scenarios.is_empty() {
            return Err(EngineError::EmptyGrid("scenarios"));
        }
        if self.seeds.is_empty() {
            return Err(EngineError::EmptyGrid("seeds"));
        }
        // Validate the grid up front: fail fast on the first bad name
        // instead of deep inside a worker thread.
        let resolved: Vec<(WorkloadSel, WorkloadProfile)> = self
            .workloads
            .iter()
            .map(|w| Ok((w.clone(), w.resolve()?)))
            .collect::<Result<_, EngineError>>()?;
        let mut checked = std::collections::BTreeSet::new();
        for sc in &self.scenarios {
            if checked.insert(sc.model.as_str()) {
                self.registry.build(&sc.model, 0)?;
            }
        }

        let scenarios_per_suite = self.scenarios.len();
        let jobs: Vec<(WorkloadSel, WorkloadProfile, u64)> = resolved
            .into_iter()
            .flat_map(|(sel, prof)| self.seeds.iter().map(move |&s| (sel.clone(), prof, s)))
            .collect();

        let suites: Vec<Result<Vec<RunRecord>, EngineError>> =
            parallel_map(jobs, |(sel, profile, seed)| {
                let trace = TraceGenerator::new(profile, *seed).generate(self.branches);
                let opts = SimOptions {
                    warmup_frac: self.warmup_frac,
                    // Derive per trace, once: thread_count() is O(events).
                    threads: self.threads.or(Some(trace.thread_count().max(1))),
                };
                self.scenarios
                    .iter()
                    .map(|sc| {
                        let mut model = self.registry.build(&sc.model, *seed)?;
                        let report = simulate_with(model.as_mut(), sc.protection, &trace, &opts)?;
                        Ok(RunRecord {
                            workload: sel.name().to_string(),
                            model_spec: sc.model.clone(),
                            seed: *seed,
                            report,
                        })
                    })
                    .collect()
            });

        let mut records = Vec::with_capacity(suites.len() * scenarios_per_suite);
        for suite in suites {
            records.extend(suite?);
        }
        Ok(RunSet {
            records,
            scenarios_per_suite,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_preset_runs_in_legend_order() {
        let set = Experiment::new("fig3-unit")
            .workload("520.omnetpp")
            .scenarios(Scenario::fig3())
            .branches(3_000)
            .seed(3)
            .run()
            .unwrap();
        let labels: Vec<&str> = set.records().iter().map(|r| r.report.protection).collect();
        assert_eq!(
            labels,
            [
                "baseline",
                "STBPU",
                "ucode protection",
                "ucode protection2",
                "conservative"
            ]
        );
        assert_eq!(set.suite_count(), 1);
        assert_eq!(set.oae_normalized_to_first()[0].len(), 4);
    }

    #[test]
    fn grid_order_is_workload_seed_scenario() {
        let set = Experiment::new("grid")
            .workloads(["541.leela", "505.mcf"])
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(1_000)
            .seeds([1, 2])
            .run()
            .unwrap();
        let got: Vec<(String, u64)> = set
            .records()
            .iter()
            .map(|r| (r.workload.clone(), r.seed))
            .collect();
        assert_eq!(
            got,
            [
                ("541.leela".to_string(), 1),
                ("541.leela".to_string(), 2),
                ("505.mcf".to_string(), 1),
                ("505.mcf".to_string(), 2),
            ]
        );
    }

    #[test]
    fn empty_grids_rejected() {
        assert_eq!(
            Experiment::new("e")
                .scenario(Scenario::new("skl", Protection::Unprotected))
                .run()
                .unwrap_err(),
            EngineError::EmptyGrid("workloads")
        );
        assert_eq!(
            Experiment::new("e").workload("505.mcf").run().unwrap_err(),
            EngineError::EmptyGrid("scenarios")
        );
    }

    #[test]
    fn bad_names_fail_before_simulation() {
        let err = Experiment::new("e")
            .workload("not_a_workload")
            .scenarios(Scenario::fig3())
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::UnknownWorkload("not_a_workload".to_string())
        );

        let err = Experiment::new("e")
            .workload("505.mcf")
            .scenario(Scenario::new("warp_drive", Protection::Unprotected))
            .run()
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownModel { .. }));
    }

    #[test]
    fn empty_seeds_rejected() {
        let err = Experiment::new("e")
            .workload("505.mcf")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .seeds(Vec::new())
            .run()
            .unwrap_err();
        assert_eq!(err, EngineError::EmptyGrid("seeds"));
    }

    #[test]
    #[should_panic(expected = "suite index 1 out of range")]
    fn suite_reports_bounds_checked() {
        let set = Experiment::new("b")
            .workload("505.mcf")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(500)
            .run()
            .unwrap();
        let _ = set.suite_reports(1);
    }

    #[test]
    fn scenario_parse_round_trip() {
        let sc = Scenario::parse("st_skl@r=0.01:stbpu").unwrap();
        assert_eq!(sc.model, "st_skl@r=0.01");
        assert_eq!(sc.protection, Protection::Stbpu);
        assert!(Scenario::parse("skl").is_err());
    }

    #[test]
    fn serialization_shapes() {
        let set = Experiment::new("ser")
            .workload("505.mcf")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(1_000)
            .seed(5)
            .run()
            .unwrap();
        let csv = set.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().next().unwrap().starts_with("workload,model"));
        let json = set.to_json();
        assert!(json.starts_with("[{") && json.ends_with("}]"));
        assert!(json.contains("\"workload\":\"505.mcf\""));
    }

    #[test]
    fn matches_direct_simulation_exactly() {
        // The engine path (trace per (workload, seed), model per scenario)
        // must reproduce a hand-rolled run bit-for-bit.
        use stbpu_predictors::skl_baseline;
        let set = Experiment::new("ref")
            .workload("525.x264")
            .scenario(Scenario::new("skl", Protection::Unprotected))
            .branches(5_000)
            .seed(11)
            .warmup(0.1)
            .run()
            .unwrap();

        let trace = TraceGenerator::new(profiles::by_name("525.x264").unwrap(), 11).generate(5_000);
        let mut model = skl_baseline();
        let reference = stbpu_sim::simulate(&mut model, Protection::Unprotected, &trace, 0.1);
        let got = &set.records()[0].report;
        assert_eq!(got.oae, reference.oae);
        assert_eq!(got.mispredictions, reference.mispredictions);
        assert_eq!(got.evictions, reference.evictions);
    }
}

//! Kill/resume support for grid runs: the completed-suite log and the
//! checkpointable cell runner behind `Experiment::checkpoint_dir`.
//!
//! A checkpointed grid run persists two kinds of state:
//!
//! * **`completed.jsonl`** — one line per finished (workload, seed)
//!   suite, appended and flushed the moment the suite's records arrive on
//!   the main thread. Every numeric field is encoded as a *string*: `u64`
//!   as decimal (JSON numbers are doubles and would corrupt counters
//!   above 2⁵³) and `f64` via Rust's shortest-roundtrip `Display`, which
//!   `str::parse::<f64>` restores bit-exactly. A process killed
//!   mid-append leaves at most one partial trailing line, which the
//!   parser skips.
//! * **`cell-<suite>-<scenario>.stck`** — an in-flight [`Checkpoint`] per
//!   running cell, refreshed every `checkpoint_every` branches
//!   (atomically: temp file + rename). Unlike the shard driver, the cell
//!   blob keeps its retained interval windows — a resumed cell's final
//!   series must equal the uninterrupted one.
//!
//! On resume, suites present in the log are skipped outright; a live cell
//! checkpoint warm-starts its cell via [`crate::resume_session`] +
//! [`stbpu_trace::EventSource::skip_events`]. Both paths are
//! bit-identical to never having been killed (test- and CI-enforced).

use crate::error::EngineError;
use crate::experiment::{RunRecord, Scenario};
use crate::minijson::{escape, Json};
use crate::registry::ModelRegistry;
use crate::report::protection_from_str;
use crate::shard::resume_session;
use crate::workload::Workload;
use stbpu_sim::{Checkpoint, IntervalWindow, OwnedSession, SessionOptions, SimReport, Warmup};
use std::path::{Path, PathBuf};
/// Batch size for the cell feed loop (matches the session's pull size).
const CELL_BATCH: usize = 4_096;

/// In-flight checkpoint path for one cell of the grid.
pub(crate) fn cell_path(dir: &Path, suite: usize, scenario: usize) -> PathBuf {
    dir.join(format!("cell-{suite}-{scenario}.stck"))
}

fn push_str_field(out: &mut String, key: &str, val: &str, first: bool) {
    if !first {
        out.push(',');
    }
    out.push_str(&escape(key));
    out.push(':');
    out.push_str(&escape(val));
}

/// One completed suite as a `completed.jsonl` line (no trailing newline).
pub(crate) fn suite_to_json_line(suite: usize, records: &[RunRecord]) -> String {
    let mut out = String::from("{");
    push_str_field(&mut out, "suite", &suite.to_string(), true);
    out.push_str(",\"records\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "workload", &r.workload, true);
        push_str_field(&mut out, "model_spec", &r.model_spec, false);
        push_str_field(&mut out, "seed", &r.seed.to_string(), false);
        out.push_str(",\"report\":{");
        push_str_field(&mut out, "model", &r.report.model, true);
        push_str_field(&mut out, "protection", r.report.protection, false);
        push_str_field(&mut out, "workload", &r.report.workload, false);
        push_str_field(&mut out, "oae", &format!("{}", r.report.oae), false);
        push_str_field(
            &mut out,
            "direction_rate",
            &format!("{}", r.report.direction_rate),
            false,
        );
        push_str_field(
            &mut out,
            "target_rate",
            &format!("{}", r.report.target_rate),
            false,
        );
        push_str_field(&mut out, "branches", &r.report.branches.to_string(), false);
        push_str_field(
            &mut out,
            "mispredictions",
            &r.report.mispredictions.to_string(),
            false,
        );
        push_str_field(
            &mut out,
            "evictions",
            &r.report.evictions.to_string(),
            false,
        );
        push_str_field(&mut out, "flushes", &r.report.flushes.to_string(), false);
        push_str_field(
            &mut out,
            "rerandomizations",
            &r.report.rerandomizations.to_string(),
            false,
        );
        out.push_str("},\"intervals\":[");
        for (j, w) in r.intervals.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[\"{}\",\"{}\",\"{}\",\"{}\",\"{}\",\"{}\"]",
                w.start_branch,
                w.branches,
                w.effective_correct,
                w.mispredictions,
                w.flushes,
                w.rerandomizations
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn str_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key)?.as_str()?.parse().ok()
}

fn str_f64(j: &Json, key: &str) -> Option<f64> {
    j.get(key)?.as_str()?.parse().ok()
}

fn str_string(j: &Json, key: &str) -> Option<String> {
    Some(j.get(key)?.as_str()?.to_string())
}

fn record_from_json(j: &Json) -> Option<RunRecord> {
    let rep = j.get("report")?;
    // The log stores the display label; map it back to the one static
    // string every live report carries.
    let protection = protection_from_str(rep.get("protection")?.as_str()?)
        .ok()?
        .label();
    let mut intervals = Vec::new();
    for w in j.get("intervals")?.as_array()? {
        let v: Vec<u64> = w
            .as_array()?
            .iter()
            .map(|x| x.as_str().and_then(|s| s.parse().ok()))
            .collect::<Option<_>>()?;
        let &[start_branch, branches, effective_correct, mispredictions, flushes, rerandomizations] =
            v.as_slice()
        else {
            return None;
        };
        intervals.push(IntervalWindow {
            start_branch,
            branches,
            effective_correct,
            mispredictions,
            flushes,
            rerandomizations,
        });
    }
    Some(RunRecord {
        workload: str_string(j, "workload")?,
        model_spec: str_string(j, "model_spec")?,
        seed: str_u64(j, "seed")?,
        report: SimReport {
            model: str_string(rep, "model")?,
            protection,
            workload: str_string(rep, "workload")?,
            oae: str_f64(rep, "oae")?,
            direction_rate: str_f64(rep, "direction_rate")?,
            target_rate: str_f64(rep, "target_rate")?,
            branches: str_u64(rep, "branches")?,
            mispredictions: str_u64(rep, "mispredictions")?,
            evictions: str_u64(rep, "evictions")?,
            flushes: str_u64(rep, "flushes")?,
            rerandomizations: str_u64(rep, "rerandomizations")?,
        },
        intervals,
    })
}

/// Parses one `completed.jsonl` line; `None` for anything malformed —
/// notably the partial trailing line a kill can leave behind.
pub(crate) fn suite_from_json_line(line: &str) -> Option<(usize, Vec<RunRecord>)> {
    let j = Json::parse(line).ok()?;
    let suite = str_u64(&j, "suite")? as usize;
    let records = j
        .get("records")?
        .as_array()?
        .iter()
        .map(record_from_json)
        .collect::<Option<Vec<_>>>()?;
    Some((suite, records))
}

fn src_err(e: stbpu_trace::SourceError) -> EngineError {
    EngineError::WorkloadSource(e.to_string())
}

/// Runs one grid cell with periodic in-flight checkpointing, resuming
/// from an existing valid checkpoint at `cell` when one is present.
///
/// Cell checkpointing is best-effort where the *model* is concerned — a
/// custom model without snapshot support silently disables it (the suite
/// log still gives whole-suite resume) — but I/O failures while saving
/// are loud: a full disk must not masquerade as a checkpointed run.
///
/// # Errors
///
/// Registry, workload, simulation, or checkpoint-save errors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cell(
    registry: &ModelRegistry,
    sc: &Scenario,
    workload: &Workload,
    seed: u64,
    branches: usize,
    warmup: Warmup,
    threads: Option<usize>,
    interval: Option<u64>,
    cell: &Path,
    checkpoint_every: u64,
) -> Result<RunRecord, EngineError> {
    let mut source = workload.open(seed, branches)?;

    // A valid in-flight checkpoint for exactly this cell warm-starts it;
    // anything stale or mismatched is ignored and the cell runs fresh.
    let resumable = Checkpoint::load(cell).ok().filter(|cp| {
        cp.model_spec == sc.model && cp.seed == seed && cp.protection == sc.protection
    });
    let (mut session, mut events_fed) = match resumable {
        Some(cp) => {
            let s = resume_session(registry, &cp)?;
            let skipped = source.skip_events(cp.events_consumed).map_err(src_err)?;
            if skipped != cp.events_consumed {
                return Err(EngineError::Checkpoint(format!(
                    "cell checkpoint consumed {} events but its stream has only {skipped}",
                    cp.events_consumed
                )));
            }
            (s, cp.events_consumed)
        }
        None => {
            let model = registry.build(&sc.model, seed)?;
            let threads = threads.or(match source.thread_count() {
                0 => None,
                t => Some(t),
            });
            let mut s: OwnedSession<crate::ModelCore> = OwnedSession::new(
                model,
                sc.protection,
                SessionOptions {
                    warmup,
                    threads,
                    interval,
                    workload: None,
                },
            )?;
            s.begin(source.name(), source.branch_hint())?;
            (s, 0u64)
        }
    };

    let mut buf = Vec::new();
    let mut last_saved = session.branches_seen();
    let mut every = checkpoint_every.max(1);
    loop {
        let n = source.next_batch(&mut buf, CELL_BATCH).map_err(src_err)?;
        if n == 0 {
            break;
        }
        session.feed_batch(&buf)?;
        events_fed += n as u64;
        if session.branches_seen().saturating_sub(last_saved) >= every {
            match Checkpoint::capture(&session, &sc.model, seed, events_fed) {
                Ok(cp) => {
                    cp.save(cell)
                        .map_err(|e| EngineError::Checkpoint(e.to_string()))?;
                    last_saved = session.branches_seen();
                }
                Err(_) => every = u64::MAX,
            }
        }
    }
    let (report, intervals) = session.finish_with_intervals();
    Ok(RunRecord {
        workload: workload.label(),
        model_spec: sc.model.clone(),
        seed,
        report,
        intervals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_sim::Protection;

    fn sample_records() -> Vec<RunRecord> {
        vec![RunRecord {
            workload: "w,\"quoted\"".to_string(),
            model_spec: "st_skl@r=0.05".to_string(),
            seed: u64::MAX,
            report: SimReport {
                model: "st_skl".to_string(),
                protection: Protection::Stbpu.label(),
                workload: "w,\"quoted\"".to_string(),
                oae: 0.1 + 0.2, // not representable as a short decimal
                direction_rate: f64::MIN_POSITIVE,
                target_rate: 1.0 / 3.0,
                branches: (1 << 53) + 1, // would corrupt as a JSON double
                mispredictions: 7,
                evictions: 0,
                flushes: u64::MAX,
                rerandomizations: 3,
            },
            intervals: vec![IntervalWindow {
                start_branch: 9_007_199_254_740_993,
                branches: 1,
                effective_correct: 2,
                mispredictions: 3,
                flushes: 4,
                rerandomizations: 5,
            }],
        }]
    }

    #[test]
    fn suite_log_line_roundtrips_bit_exactly() {
        let recs = sample_records();
        let line = suite_to_json_line(17, &recs);
        let (suite, back) = suite_from_json_line(&line).unwrap();
        assert_eq!(suite, 17);
        assert_eq!(back.len(), 1);
        let (a, b) = (&recs[0], &back[0]);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.model_spec, b.model_spec);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.oae.to_bits(), b.report.oae.to_bits());
        assert_eq!(
            a.report.direction_rate.to_bits(),
            b.report.direction_rate.to_bits()
        );
        assert_eq!(a.intervals, b.intervals);
    }

    #[test]
    fn partial_and_garbage_lines_are_skipped() {
        let line = suite_to_json_line(0, &sample_records());
        // A kill can truncate the trailing line anywhere.
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(suite_from_json_line(&line[..cut]).is_none(), "cut={cut}");
        }
        assert!(suite_from_json_line("").is_none());
        assert!(suite_from_json_line("{\"suite\":\"0\"}").is_none());
        assert!(suite_from_json_line("not json at all").is_none());
    }
}

//! Work-stealing parallel map used by the experiment runner and harnesses.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `job` over `items` on all available cores, preserving input order.
///
/// Work distribution is a shared atomic cursor (dynamic load balancing:
/// slow items do not stall a fixed chunk). Each worker accumulates
/// `(index, result)` pairs privately and results are scattered into the
/// output after the scope joins — there is no lock anywhere on the result
/// path, unlike the old `Mutex<Vec<Option<R>>>` implementation that
/// serialized every write.
pub fn parallel_map<T, R, F>(items: Vec<T>, job: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);

    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, job(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("parallel_map worker panicked"));
        }
    });

    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (i, r) in buckets.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..1000).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_job_costs_balance() {
        // Early items are expensive: dynamic distribution must still fill
        // every slot correctly.
        let out = parallel_map((0..64u64).collect(), |&x| {
            if x < 4 {
                (0..200_000u64).fold(x, |a, b| a.wrapping_add(b % 7))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[63], 63);
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(vec![41], |&x: &i32| x + 1), vec![42]);
    }
}

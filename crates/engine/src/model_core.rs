//! The sealed model enum: every standard predictor × mapper composition
//! as a concrete variant, so simulation hot loops monomorphize.
//!
//! `Box<dyn Bpu>` costs a virtual call per [`Bpu::process`] — once per
//! simulated branch, squarely on the hot path. [`ModelCore`] closes the
//! set of standard compositions into an enum: dispatch is one predictable
//! jump per call and the concrete `FullBpu<D, M>::process` bodies inline
//! into the caller. A `SimSession<ModelCore>` (what
//! [`crate::ModelRegistry::build`] hands every engine/CLI/bench path)
//! therefore runs the whole predict–update–monitor pipeline without
//! dynamic dispatch. Downstream code with its own model types still
//! plugs in through [`ModelCore::Custom`], which keeps the registry open
//! at the old virtual-call cost.

use stbpu_bpu::{
    BaselineMapper, Bpu, BpuStats, BranchOutcome, BranchRecord, ConservativeMapper, EntityId,
    SnapError, StateReader, StateWriter,
};
use stbpu_core::StMapper;
use stbpu_predictors::{FullBpu, Gshare, PerceptronPredictor, SklCond, Tage};

macro_rules! model_core {
    ($($variant:ident($dir:ident, $mapper:ident)),+ $(,)?) => {
        /// A complete model as a sealed enum over the standard
        /// predictor × mapper compositions (see the module docs). Obtain
        /// one from [`crate::ModelRegistry::build`] or via `From` on any
        /// standard [`FullBpu`] composition; wrap anything else in
        /// [`ModelCore::Custom`].
        pub enum ModelCore {
            $(
                #[doc = concat!("`FullBpu<", stringify!($dir), ", ", stringify!($mapper), ">`.")]
                $variant(FullBpu<$dir, $mapper>),
            )+
            /// Any other [`Bpu`] implementation (virtual dispatch).
            /// `Send` so a `ModelCore` of any variant can migrate across
            /// worker threads (sessions check in and out of a server
            /// registry).
            Custom(Box<dyn Bpu + Send>),
        }

        $(
            impl From<FullBpu<$dir, $mapper>> for ModelCore {
                fn from(m: FullBpu<$dir, $mapper>) -> Self {
                    ModelCore::$variant(m)
                }
            }
        )+

        impl ModelCore {
            /// Applies `f` to the underlying model as `&mut dyn Bpu`
            /// (cold paths only; the `Bpu` impl below stays static).
            fn with_dyn<T>(&mut self, f: impl FnOnce(&mut dyn Bpu) -> T) -> T {
                match self {
                    $(ModelCore::$variant(m) => f(m),)+
                    ModelCore::Custom(m) => f(m.as_mut()),
                }
            }
        }

        impl Bpu for ModelCore {
            fn name(&self) -> &str {
                match self {
                    $(ModelCore::$variant(m) => m.name(),)+
                    ModelCore::Custom(m) => m.name(),
                }
            }

            #[inline]
            fn process(&mut self, tid: usize, rec: &BranchRecord) -> BranchOutcome {
                match self {
                    $(ModelCore::$variant(m) => m.process(tid, rec),)+
                    ModelCore::Custom(m) => m.process(tid, rec),
                }
            }

            fn context_switch(&mut self, tid: usize, entity: EntityId) {
                self.with_dyn(|m| m.context_switch(tid, entity))
            }

            fn flush(&mut self) {
                self.with_dyn(|m| m.flush())
            }

            fn flush_targets(&mut self) {
                self.with_dyn(|m| m.flush_targets())
            }

            fn set_partitioned(&mut self, on: bool) {
                self.with_dyn(|m| m.set_partitioned(on))
            }

            fn stats(&self) -> &BpuStats {
                match self {
                    $(ModelCore::$variant(m) => m.stats(),)+
                    ModelCore::Custom(m) => m.stats(),
                }
            }

            fn reset_stats(&mut self) {
                self.with_dyn(|m| m.reset_stats())
            }

            fn rerandomizations(&self) -> u64 {
                match self {
                    $(ModelCore::$variant(m) => m.rerandomizations(),)+
                    ModelCore::Custom(m) => m.rerandomizations(),
                }
            }

            fn save_state(&self, w: &mut StateWriter) -> Result<(), SnapError> {
                match self {
                    $(ModelCore::$variant(m) => m.save_state(w),)+
                    ModelCore::Custom(m) => m.save_state(w),
                }
            }

            fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
                self.with_dyn(|m| m.load_state(r))
            }
        }
    };
}

model_core! {
    SklBaseline(SklCond, BaselineMapper),
    SklConservative(SklCond, ConservativeMapper),
    SklSt(SklCond, StMapper),
    GshareBaseline(Gshare, BaselineMapper),
    GshareConservative(Gshare, ConservativeMapper),
    GshareSt(Gshare, StMapper),
    TageBaseline(Tage, BaselineMapper),
    TageConservative(Tage, ConservativeMapper),
    TageSt(Tage, StMapper),
    PerceptronBaseline(PerceptronPredictor, BaselineMapper),
    PerceptronConservative(PerceptronPredictor, ConservativeMapper),
    PerceptronSt(PerceptronPredictor, StMapper),
}

impl From<Box<dyn Bpu + Send>> for ModelCore {
    fn from(m: Box<dyn Bpu + Send>) -> Self {
        ModelCore::Custom(m)
    }
}

/// Compile-time guarantee that every variant (standard compositions and
/// `Custom`) is `Send` — the property server worker pools rely on.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ModelCore>();
};

impl std::fmt::Debug for ModelCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModelCore({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_core::{st_skl, StConfig};
    use stbpu_predictors::skl_baseline;

    #[test]
    fn enum_and_boxed_dispatch_agree() {
        // The monomorphized variant must behave exactly like the same
        // model behind a vtable.
        let mut core: ModelCore = skl_baseline().into();
        let mut boxed: Box<dyn Bpu> = Box::new(skl_baseline());
        for i in 0..500u64 {
            let rec = BranchRecord::conditional(0x40_0000 + (i % 7) * 64, i % 3 != 0, 0x41_0000);
            assert_eq!(core.process(0, &rec), boxed.process(0, &rec));
        }
        assert_eq!(core.name(), boxed.name());
        assert_eq!(core.stats().oae(), boxed.stats().oae());
    }

    #[test]
    fn st_variant_rerandomizes_through_the_enum() {
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 1.0,
            eviction_complexity: 1.0,
            ..StConfig::default()
        };
        let mut core: ModelCore = st_skl(cfg, 3).into();
        for i in 0..2_000u64 {
            // Alternating outcomes on one address force mispredictions.
            let rec = BranchRecord::conditional(0x40_0000, i % 2 == 0, 0x41_0000);
            core.process(0, &rec);
        }
        assert!(core.rerandomizations() > 0);
    }

    #[test]
    fn custom_variant_keeps_the_registry_open() {
        let boxed: Box<dyn Bpu + Send> = Box::new(skl_baseline());
        let mut core = ModelCore::from(boxed);
        assert_eq!(core.name(), "SKLCond");
        core.flush();
        assert_eq!(core.stats().flushes, 1);
    }
}

//! Experiment spec files: declare a whole `workloads × scenarios × seeds`
//! grid in TOML or JSON and run it without recompiling.
//!
//! The format mirrors the [`crate::Experiment`] builder one-to-one:
//!
//! ```toml
//! # sweep.toml — every key except workloads/scenarios is optional
//! name = "r-sweep"
//! workloads = ["505.mcf", "541.leela"]
//! trace_files = ["captures/apache.trace"]
//! scenarios = ["skl:unprotected", "st_skl@r=0.05:stbpu"]
//! seeds = [1, 2, 3]
//! branches = 20000
//! warmup = 0.1            # fraction; or: warmup_branches = 500
//! interval = 1000         # OAE-over-time window (branches)
//! threads = 2
//! ```
//!
//! The same keys in a JSON object work identically (the leading character
//! decides the dialect). Parsing is offline — TOML support is a
//! line-oriented subset (scalars and single-line arrays, `#` comments),
//! which covers every grid the builder can express; JSON goes through
//! [`crate::minijson`].

use crate::error::EngineError;
use crate::experiment::{Experiment, Scenario};
use crate::minijson::Json;
use crate::workload::Workload;

/// A declarative experiment grid parsed from a spec file.
///
/// ```
/// use stbpu_engine::ExperimentSpec;
///
/// let spec = ExperimentSpec::parse(
///     "name = \"demo\"\nworkloads = [\"505.mcf\"]\n\
///      scenarios = [\"skl:unprotected\"]\nbranches = 2000\n",
/// )
/// .unwrap();
/// let set = spec.to_experiment().unwrap().run().unwrap();
/// assert_eq!(set.records().len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (default `"spec"`).
    pub name: Option<String>,
    /// Named workload profiles.
    pub workloads: Vec<String>,
    /// Line-format trace files (paths).
    pub trace_files: Vec<String>,
    /// `model:protection` scenario strings.
    pub scenarios: Vec<String>,
    /// Seeds (default: the builder's default seed).
    pub seeds: Vec<u64>,
    /// Branches per generated stream.
    pub branches: Option<usize>,
    /// Fractional warm-up.
    pub warmup: Option<f64>,
    /// Absolute warm-up budget in branches (overrides `warmup`).
    pub warmup_branches: Option<u64>,
    /// OAE-over-time window size in branches.
    pub interval: Option<u64>,
    /// Explicit hardware-thread provision.
    pub threads: Option<usize>,
}

impl ExperimentSpec {
    /// Parses a spec document, auto-detecting JSON (`{`-leading) vs TOML.
    pub fn parse(text: &str) -> Result<Self, EngineError> {
        if text.trim_start().starts_with('{') {
            Self::from_json(text)
        } else {
            Self::from_toml(text)
        }
    }

    /// Reads and parses a spec file.
    pub fn load(path: &std::path::Path) -> Result<Self, EngineError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| EngineError::Spec(format!("read {}: {e}", path.display())))?;
        Self::parse(&text)
            .map_err(|e| EngineError::Spec(format!("{}: {}", path.display(), spec_reason(e))))
    }

    /// Parses the JSON dialect.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let doc = Json::parse(text).map_err(|e| EngineError::Spec(e.to_string()))?;
        let fields = doc
            .fields()
            .ok_or_else(|| EngineError::Spec("spec document must be a JSON object".to_string()))?;
        let mut spec = ExperimentSpec::default();
        for (key, value) in fields {
            spec.set(key, &JsonVal(value))?;
        }
        Ok(spec)
    }

    /// Parses the TOML-subset dialect.
    pub fn from_toml(text: &str) -> Result<Self, EngineError> {
        let mut spec = ExperimentSpec::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let ln = idx + 1;
            let (key, value) = line.split_once('=').ok_or_else(|| {
                EngineError::Spec(format!("line {ln}: expected 'key = value', got '{line}'"))
            })?;
            let value = toml_value(value.trim())
                .map_err(|msg| EngineError::Spec(format!("line {ln}: {msg}")))?;
            spec.set(key.trim(), &value)
                .map_err(|e| EngineError::Spec(format!("line {ln}: {}", spec_reason(e))))?;
        }
        Ok(spec)
    }

    fn set(&mut self, key: &str, value: &dyn SpecValue) -> Result<(), EngineError> {
        let bad = |what: &str| EngineError::Spec(format!("key '{key}' must be {what}"));
        match key {
            "name" => self.name = Some(value.str().ok_or_else(|| bad("a string"))?),
            "workloads" => {
                self.workloads = value.str_list().ok_or_else(|| bad("a list of strings"))?
            }
            "trace_files" => {
                self.trace_files = value.str_list().ok_or_else(|| bad("a list of strings"))?
            }
            "scenarios" => {
                self.scenarios = value.str_list().ok_or_else(|| bad("a list of strings"))?
            }
            "seeds" => self.seeds = value.u64_list().ok_or_else(|| bad("a list of integers"))?,
            "branches" => {
                self.branches = Some(value.u64().ok_or_else(|| bad("an integer"))? as usize)
            }
            "warmup" => {
                let w = value.f64().ok_or_else(|| bad("a number"))?;
                if !(0.0..1.0).contains(&w) {
                    return Err(EngineError::Spec(format!(
                        "warmup fraction {w} not in [0, 1)"
                    )));
                }
                self.warmup = Some(w);
            }
            "warmup_branches" => {
                self.warmup_branches = Some(value.u64().ok_or_else(|| bad("an integer"))?)
            }
            "interval" => self.interval = Some(value.u64().ok_or_else(|| bad("an integer"))?),
            "threads" => {
                self.threads = Some(value.u64().ok_or_else(|| bad("an integer"))? as usize)
            }
            other => {
                return Err(EngineError::Spec(format!(
                    "unknown key '{other}' (accepted: name, workloads, trace_files, \
                     scenarios, seeds, branches, warmup, warmup_branches, interval, threads)"
                )))
            }
        }
        Ok(())
    }

    /// Materializes the spec as an [`Experiment`] builder (scenario
    /// strings parsed, workloads attached). Grid validation — names,
    /// files, emptiness — happens in [`Experiment::run`].
    pub fn to_experiment(&self) -> Result<Experiment, EngineError> {
        let mut exp = Experiment::new(self.name.as_deref().unwrap_or("spec"));
        for w in &self.workloads {
            exp = exp.workload(w);
        }
        for f in &self.trace_files {
            exp = exp.add_workload(Workload::File(f.into()));
        }
        for s in &self.scenarios {
            exp = exp.scenario(Scenario::parse(s)?);
        }
        if !self.seeds.is_empty() {
            exp = exp.seeds(self.seeds.iter().copied());
        }
        if let Some(b) = self.branches {
            exp = exp.branches(b);
        }
        if let Some(w) = self.warmup {
            exp = exp.warmup(w);
        }
        if let Some(w) = self.warmup_branches {
            exp = exp.warmup_branches(w);
        }
        if let Some(i) = self.interval {
            exp = exp.interval(i);
        }
        if let Some(t) = self.threads {
            exp = exp.threads(t);
        }
        Ok(exp)
    }
}

fn spec_reason(e: EngineError) -> String {
    match e {
        EngineError::Spec(msg) => msg,
        other => other.to_string(),
    }
}

/// Dialect-independent view of one spec value.
trait SpecValue {
    fn str(&self) -> Option<String>;
    fn f64(&self) -> Option<f64>;
    fn u64(&self) -> Option<u64>;
    fn str_list(&self) -> Option<Vec<String>>;
    fn u64_list(&self) -> Option<Vec<u64>>;
}

struct JsonVal<'a>(&'a Json);

impl SpecValue for JsonVal<'_> {
    fn str(&self) -> Option<String> {
        self.0.as_str().map(str::to_string)
    }
    fn f64(&self) -> Option<f64> {
        self.0.as_f64()
    }
    fn u64(&self) -> Option<u64> {
        self.0.as_u64()
    }
    fn str_list(&self) -> Option<Vec<String>> {
        self.0
            .as_array()?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect()
    }
    fn u64_list(&self) -> Option<Vec<u64>> {
        self.0.as_array()?.iter().map(Json::as_u64).collect()
    }
}

/// One parsed TOML-subset value.
enum TomlVal {
    Str(String),
    Num(f64),
    StrList(Vec<String>),
    NumList(Vec<f64>),
}

impl SpecValue for TomlVal {
    fn str(&self) -> Option<String> {
        match self {
            TomlVal::Str(s) => Some(s.clone()),
            _ => None,
        }
    }
    fn f64(&self) -> Option<f64> {
        match self {
            TomlVal::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn u64(&self) -> Option<u64> {
        match self {
            TomlVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    fn str_list(&self) -> Option<Vec<String>> {
        match self {
            TomlVal::StrList(items) => Some(items.clone()),
            _ => None,
        }
    }
    fn u64_list(&self) -> Option<Vec<u64>> {
        match self {
            TomlVal::NumList(items) => items
                .iter()
                .map(|n| {
                    if *n >= 0.0 && n.fract() == 0.0 {
                        Some(*n as u64)
                    } else {
                        None
                    }
                })
                .collect(),
            _ => None,
        }
    }
}

/// Parses one TOML-subset value: `"string"`, number, or a single-line
/// array of either. A trailing `# comment` after the value is stripped.
fn toml_value(raw: &str) -> Result<TomlVal, String> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('[') {
        // Find the closing ']' outside any quoted string — a later ']'
        // inside a trailing `# comment [like this]` must not be picked.
        let mut close = None;
        let mut in_string = false;
        for (i, c) in rest.char_indices() {
            match c {
                '"' => in_string = !in_string,
                ']' if !in_string => {
                    close = Some(i);
                    break;
                }
                '#' if !in_string => break,
                _ => {}
            }
        }
        let close =
            close.ok_or_else(|| "unterminated array (arrays must be single-line)".to_string())?;
        let (body, tail) = (&rest[..close], rest[close + 1..].trim());
        if !(tail.is_empty() || tail.starts_with('#')) {
            return Err(format!("trailing characters after array: '{tail}'"));
        }
        let items = split_array_items(body);
        if items.is_empty() {
            return Ok(TomlVal::StrList(Vec::new()));
        }
        if items[0].starts_with('"') {
            items
                .iter()
                .map(|i| toml_string(i))
                .collect::<Result<_, _>>()
                .map(TomlVal::StrList)
        } else {
            items
                .iter()
                .map(|i| {
                    i.parse::<f64>()
                        .map_err(|_| format!("'{i}' is not a number"))
                })
                .collect::<Result<_, _>>()
                .map(TomlVal::NumList)
        }
    } else if raw.starts_with('"') {
        toml_string(strip_comment_after_string(raw)?).map(TomlVal::Str)
    } else {
        let scalar = raw.split('#').next().unwrap_or("").trim();
        scalar
            .parse::<f64>()
            .map(TomlVal::Num)
            .map_err(|_| format!("'{scalar}' is not a number or \"string\""))
    }
}

/// Splits an array body at commas outside quoted strings (so a path like
/// `"a,b.trace"` stays one element), trimming and dropping empties
/// (trailing commas).
fn split_array_items(body: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&body[start..]);
    items
        .into_iter()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

/// Strips a `# comment` following a closing quote.
fn strip_comment_after_string(raw: &str) -> Result<&str, String> {
    let close = raw[1..]
        .find('"')
        .ok_or_else(|| format!("unterminated string: {raw}"))?;
    let (value, tail) = raw.split_at(close + 2);
    let tail = tail.trim();
    if tail.is_empty() || tail.starts_with('#') {
        Ok(value)
    } else {
        Err(format!("trailing characters after string: '{tail}'"))
    }
}

/// Unquotes a `"simple"` TOML string (no escape support — names, specs and
/// paths in this workspace never need escapes).
fn toml_string(raw: &str) -> Result<String, String> {
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("'{raw}' is not a quoted string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
# full-surface spec
name = "sweep"                # inline comment after a string
workloads = ["505.mcf", "541.leela"]
scenarios = ["skl:unprotected", "st_skl@r=0.05:stbpu"]
seeds = [1, 2]
branches = 2000               # inline comment after a number
warmup = 0.1
interval = 500
"#;

    const JSON: &str = r#"{
  "name": "sweep",
  "workloads": ["505.mcf", "541.leela"],
  "scenarios": ["skl:unprotected", "st_skl@r=0.05:stbpu"],
  "seeds": [1, 2],
  "branches": 2000,
  "warmup": 0.1,
  "interval": 500
}"#;

    #[test]
    fn toml_and_json_dialects_parse_identically() {
        let t = ExperimentSpec::parse(TOML).unwrap();
        let j = ExperimentSpec::parse(JSON).unwrap();
        assert_eq!(t, j);
        assert_eq!(t.name.as_deref(), Some("sweep"));
        assert_eq!(t.workloads, ["505.mcf", "541.leela"]);
        assert_eq!(t.seeds, [1, 2]);
        assert_eq!(t.branches, Some(2000));
        assert_eq!(t.warmup, Some(0.1));
        assert_eq!(t.interval, Some(500));
    }

    #[test]
    fn spec_run_matches_builder_run() {
        use crate::experiment::{Experiment, Scenario};
        let from_spec = ExperimentSpec::parse(TOML)
            .unwrap()
            .to_experiment()
            .unwrap()
            .run()
            .unwrap();
        let from_builder = Experiment::new("sweep")
            .workloads(["505.mcf", "541.leela"])
            .scenario(Scenario::parse("skl:unprotected").unwrap())
            .scenario(Scenario::parse("st_skl@r=0.05:stbpu").unwrap())
            .seeds([1, 2])
            .branches(2000)
            .warmup(0.1)
            .interval(500)
            .run()
            .unwrap();
        assert_eq!(from_spec.to_csv(), from_builder.to_csv());
        assert_eq!(
            from_spec.records()[0].intervals,
            from_builder.records()[0].intervals
        );
    }

    #[test]
    fn trace_file_and_warmup_branches_keys() {
        let spec = ExperimentSpec::parse(
            "trace_files = [\"a.trace\"]\nscenarios = [\"skl:unprotected\"]\nwarmup_branches = 100\nthreads = 2\n",
        )
        .unwrap();
        assert_eq!(spec.trace_files, ["a.trace"]);
        assert_eq!(spec.warmup_branches, Some(100));
        assert_eq!(spec.threads, Some(2));
        // The missing file is caught at run() time.
        let err = spec.to_experiment().unwrap().run().unwrap_err();
        assert!(matches!(err, EngineError::WorkloadSource(_)));
    }

    #[test]
    fn bad_specs_report_actionable_errors() {
        for (text, needle) in [
            ("branches = []", "key 'branches' must be an integer"),
            ("branches", "expected 'key = value'"),
            ("warmup = 1.5", "not in [0, 1)"),
            ("seeds = [1.5]", "list of integers"),
            ("warp = 1", "unknown key 'warp'"),
            ("workloads = [\"a\"", "unterminated array"),
            ("name = \"a\" extra", "trailing characters"),
            ("{\"branches\": []}", "key 'branches' must be an integer"),
            ("{\"branches\": 1", "JSON error"),
        ] {
            let e = ExperimentSpec::parse(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text:?} -> {e} (wanted {needle:?})"
            );
        }
        let e = ExperimentSpec::from_json("[1, 2]").unwrap_err();
        assert!(e.to_string().contains("must be a JSON object"), "{e}");
    }

    #[test]
    fn toml_line_numbers_in_errors() {
        let e = ExperimentSpec::parse("name = \"x\"\n\nbranches = nope\n").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
    }

    #[test]
    fn empty_arrays_parse() {
        let spec = ExperimentSpec::parse("workloads = []\n").unwrap();
        assert!(spec.workloads.is_empty());
    }

    #[test]
    fn array_comments_and_bracket_strings_parse() {
        // A ']' inside a trailing comment must not terminate the array…
        let spec = ExperimentSpec::parse("workloads = [\"505.mcf\"] # see [1]\n").unwrap();
        assert_eq!(spec.workloads, ["505.mcf"]);
        // …and a ']' inside a quoted element belongs to the string.
        let spec = ExperimentSpec::parse("trace_files = [\"a]b.trace\"]\n").unwrap();
        assert_eq!(spec.trace_files, ["a]b.trace"]);
        // A ',' inside a quoted element does not split it.
        let spec = ExperimentSpec::parse("trace_files = [\"a,b.trace\", \"c.trace\"]\n").unwrap();
        assert_eq!(spec.trace_files, ["a,b.trace", "c.trace"]);
    }

    #[test]
    fn missing_spec_file_errors() {
        let e = ExperimentSpec::load(std::path::Path::new("/nonexistent/spec.toml")).unwrap_err();
        assert!(matches!(e, EngineError::Spec(_)));
    }

    #[test]
    fn bad_scenario_string_surfaces_at_to_experiment() {
        let spec = ExperimentSpec::parse("scenarios = [\"skl\"]\n").unwrap();
        let err = spec.to_experiment().map(|_| ()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidScenario(_)));
    }
}

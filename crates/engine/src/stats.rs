//! Summary statistics shared by reports and harnesses.

/// Geometric mean of positive values (0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }
}

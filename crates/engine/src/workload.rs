//! The workload abstraction: where an experiment's event streams come
//! from.
//!
//! A [`Workload`] names a supplier of [`EventSource`]s — a registered
//! profile, an ad-hoc profile, a shared in-memory trace, a trace file
//! (line or binary `.stbt`, auto-detected by magic), or a custom factory. Grid runs open one fresh source per
//! (scenario, seed) cell inside the worker thread, so traces are streamed
//! per worker instead of being materialized centrally and cloned around:
//! generator-backed workloads run in O(1) memory at any length, and a
//! shared trace is only ever borrowed.

use crate::error::EngineError;
use stbpu_phases::PhaseFile;
use stbpu_trace::{open_trace_file, profiles, EventSource, Trace, TraceGenerator, WorkloadProfile};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A factory producing one event source per `(seed, branches)` request.
pub type SourceFactory = dyn Fn(u64, usize) -> Box<dyn EventSource + Send> + Send + Sync;

/// One workload of an experiment grid: a named supplier of event streams.
#[derive(Clone)]
pub enum Workload {
    /// A registered profile name (`"505.mcf"`, `"apache2_prefork_c128"`…),
    /// streamed generate-as-you-simulate.
    Named(String),
    /// An ad-hoc (non-registered) profile, streamed the same way.
    Profile(WorkloadProfile),
    /// A shared, already-materialized trace; workers borrow it, never
    /// clone it.
    Trace(Arc<Trace>),
    /// A trace file streamed from disk in O(1) memory; line vs binary
    /// `.stbt` format is auto-detected by magic
    /// (see [`stbpu_trace::open_trace_file`]).
    File(PathBuf),
    /// A custom source factory (replay proxies, fuzzers, captures…).
    Custom {
        /// Display name for records and logs.
        name: String,
        /// Factory invoked once per (scenario, seed) cell.
        factory: Arc<SourceFactory>,
    },
    /// A SimPoint-style phase file over a base workload: simulation
    /// covers only the representative slices and whole-trace metrics are
    /// reconstructed as the weighted sum (see `run_phases`). The phase
    /// file pins the stream — [`Workload::open`] always opens `base`
    /// with the file's recorded seed and branch count, ignoring the
    /// caller's, so estimation can never silently run over a different
    /// stream than the one profiled.
    Phases {
        /// The decoded `.stbp` phase file.
        file: Arc<PhaseFile>,
        /// The stream the phases were cut from.
        base: Arc<Workload>,
    },
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Workload::Named(n) => write!(f, "Workload::Named({n})"),
            Workload::Profile(p) => write!(f, "Workload::Profile({})", p.name),
            Workload::Trace(t) => write!(f, "Workload::Trace({})", t.name),
            Workload::File(p) => write!(f, "Workload::File({})", p.display()),
            Workload::Custom { name, .. } => write!(f, "Workload::Custom({name})"),
            Workload::Phases { file, .. } => {
                write!(
                    f,
                    "Workload::Phases({}, {} phases)",
                    file.workload,
                    file.phases.len()
                )
            }
        }
    }
}

impl Workload {
    /// A custom-factory workload.
    pub fn custom<F>(name: &str, factory: F) -> Self
    where
        F: Fn(u64, usize) -> Box<dyn EventSource + Send> + Send + Sync + 'static,
    {
        Workload::Custom {
            name: name.to_string(),
            factory: Arc::new(factory),
        }
    }

    /// A phase-estimation workload over `file`, with `base` supplying
    /// the underlying stream. With `base` `None`, the stream is
    /// reconstructed from the file's recorded workload label: a
    /// registered profile name, else an existing trace-file path.
    ///
    /// # Errors
    ///
    /// [`EngineError::Phase`] for an empty phase list, an
    /// unreconstructible label, or a phases-over-phases nesting.
    pub fn phases(file: PhaseFile, base: Option<Workload>) -> Result<Self, EngineError> {
        if file.phases.is_empty() {
            return Err(EngineError::Phase(format!(
                "phase file for '{}' declares no phases",
                file.workload
            )));
        }
        let base = match base {
            Some(Workload::Phases { .. }) => {
                return Err(EngineError::Phase(
                    "a phase file cannot be layered over another phase file".to_string(),
                ))
            }
            Some(b) => b,
            None => {
                if profiles::by_name(&file.workload).is_some() {
                    Workload::Named(file.workload.clone())
                } else if Path::new(&file.workload).exists() {
                    Workload::File(PathBuf::from(&file.workload))
                } else {
                    return Err(EngineError::Phase(format!(
                        "cannot reconstruct workload '{}' from the phase file — pass the base \
                         workload explicitly",
                        file.workload
                    )));
                }
            }
        };
        Ok(Workload::Phases {
            file: Arc::new(file),
            base: Arc::new(base),
        })
    }

    /// Loads a `.stbp` phase file from `path` and wraps it via
    /// [`Workload::phases`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Phase`] for I/O and decode failures, plus
    /// everything [`Workload::phases`] can return.
    pub fn phases_from_path(path: &Path, base: Option<Workload>) -> Result<Self, EngineError> {
        let file = PhaseFile::load(path).map_err(|e| EngineError::Phase(e.to_string()))?;
        Workload::phases(file, base)
    }

    /// Display label used in run records (for files: the path).
    pub fn label(&self) -> String {
        match self {
            Workload::Named(n) => n.clone(),
            Workload::Profile(p) => p.name.to_string(),
            Workload::Trace(t) => t.name.clone(),
            Workload::File(p) => p.display().to_string(),
            Workload::Custom { name, .. } => name.clone(),
            Workload::Phases { file, .. } => format!("phases:{}", file.workload),
        }
    }

    /// Fails fast on workloads that cannot possibly open (unknown profile
    /// name, missing trace file) — called before any simulation starts.
    pub fn validate(&self) -> Result<(), EngineError> {
        match self {
            Workload::Named(n) => profiles::by_name(n)
                .map(|_| ())
                .ok_or_else(|| EngineError::UnknownWorkload(n.clone())),
            Workload::File(p) => {
                if p.is_file() {
                    Ok(())
                } else {
                    Err(EngineError::WorkloadSource(format!(
                        "trace file not found: {}",
                        p.display()
                    )))
                }
            }
            Workload::Phases { base, .. } => base.validate(),
            _ => Ok(()),
        }
    }

    /// Opens a fresh event source for one grid cell. Generator-backed
    /// workloads emit exactly `branches` branch events keyed by `seed`;
    /// trace- and file-backed workloads replay their stored stream.
    pub fn open(
        &self,
        seed: u64,
        branches: usize,
    ) -> Result<Box<dyn EventSource + '_>, EngineError> {
        Ok(match self {
            Workload::Named(n) => {
                let profile =
                    profiles::by_name(n).ok_or_else(|| EngineError::UnknownWorkload(n.clone()))?;
                Box::new(TraceGenerator::new(profile, seed).into_source(branches))
            }
            Workload::Profile(p) => Box::new(TraceGenerator::new(p, seed).into_source(branches)),
            Workload::Trace(t) => Box::new(t.source()),
            Workload::File(p) => Box::new(
                open_trace_file(p).map_err(|e| EngineError::WorkloadSource(e.to_string()))?,
            ),
            Workload::Custom { factory, .. } => factory(seed, branches),
            // The phase file pins the stream: always the recorded seed
            // and branch count, never the caller's.
            Workload::Phases { file, base } => {
                let _ = (seed, branches);
                return base.open(file.seed, file.total_branches as usize);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_workload_opens_declared_stream() {
        let w = Workload::Named("505.mcf".to_string());
        w.validate().unwrap();
        let src = w.open(3, 1_000).unwrap();
        assert_eq!(src.name(), "505.mcf");
        assert_eq!(src.branch_hint(), Some(1_000));
    }

    #[test]
    fn unknown_name_and_missing_file_fail_fast() {
        assert_eq!(
            Workload::Named("warp".to_string()).validate().unwrap_err(),
            EngineError::UnknownWorkload("warp".to_string())
        );
        let missing = Workload::File(PathBuf::from("/nonexistent/trace.txt"));
        assert!(matches!(
            missing.validate().unwrap_err(),
            EngineError::WorkloadSource(_)
        ));
        assert!(matches!(
            missing.open(0, 0).map(|_| ()).unwrap_err(),
            EngineError::WorkloadSource(_)
        ));
    }

    #[test]
    fn shared_trace_is_borrowed_not_cloned() {
        let t = Arc::new(TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(200));
        let w = Workload::Trace(Arc::clone(&t));
        let mut src = w.open(0, 0).unwrap();
        let mut n = 0;
        while src.next_event().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, t.len());
        assert_eq!(Arc::strong_count(&t), 2, "only the Arc is duplicated");
    }

    #[test]
    fn file_workload_auto_detects_binary_format() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 9).generate(300);
        let dir = std::env::temp_dir().join(format!("stbpu-engine-wl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("auto.stbt");
        let mut buf = Vec::new();
        stbpu_trace::binfmt::write_bin_trace(&t, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();

        let w = Workload::File(path);
        w.validate().unwrap();
        let mut src = w.open(0, 0).unwrap();
        assert_eq!(src.branch_hint(), Some(300));
        assert_eq!(src.collect_trace().unwrap().events(), t.events());
    }

    #[test]
    fn custom_factory_runs_per_cell() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let w = Workload::custom("synthetic", move |seed, branches| {
            c.fetch_add(1, Ordering::SeqCst);
            Box::new(
                TraceGenerator::new(&WorkloadProfile::test_profile(), seed).into_source(branches),
            )
        });
        assert_eq!(w.label(), "synthetic");
        let _ = w.open(1, 10).unwrap();
        let _ = w.open(2, 10).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }
}

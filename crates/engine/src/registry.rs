//! The open model registry: every predictor × mapper × BTB composition is
//! constructible by string name, and downstream code can register new
//! compositions without touching the engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::EngineError;
use crate::model_core::ModelCore;
use stbpu_bpu::{BaselineMapper, BtbConfig, ConservativeMapper};
use stbpu_core::{
    st_ittage, st_perceptron, st_skl, st_tage64, st_tage8, st_tagescl, StConfig, StMapper,
};
use stbpu_predictors::{
    conservative, ittage_baseline, perceptron_baseline, skl_baseline, tage64_baseline,
    tage8_baseline, tagescl_baseline, DirectionPredictor, FullBpu, Gshare, PerceptronConfig,
    PerceptronPredictor, SklCond, Tage, TageConfig,
};

/// Direction-predictor choice for a [`ModelSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PredictorSpec {
    /// Skylake-like hybrid (one-level + two-level + chooser).
    SklCond,
    /// Plain gshare with `2^bits` counters.
    Gshare {
        /// log2 of the PHT size.
        bits: u32,
    },
    /// TAGE-SC-L 8 KB.
    Tage8,
    /// TAGE-SC-L 64 KB.
    Tage64,
    /// Jiménez–Lin perceptron.
    Perceptron,
}

/// Mapper (protection substrate) choice for a [`ModelSpec`].
#[derive(Clone, Copy, Debug)]
pub enum MapperSpec {
    /// Reverse-engineered Skylake mapping, truncated addresses.
    Baseline,
    /// STBPU secret-token keyed remapping.
    SecretToken(StConfig),
    /// Full 48-bit tags/targets (the "conservative" model).
    Conservative,
}

/// BTB geometry choice for a [`ModelSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BtbSpec {
    /// 4096-entry, 8-way Skylake-like geometry with compressed tags.
    Skylake,
    /// Half-capacity geometry storing full tags and targets.
    Conservative,
}

/// A declarative model composition: direction predictor + mapper + BTB.
///
/// This is the open replacement for the old closed `ModelKind` enum — any
/// combination builds, including ones no paper figure uses (e.g. a
/// secret-token gshare):
///
/// ```
/// use stbpu_bpu::Bpu;
/// use stbpu_engine::{MapperSpec, ModelSpec, PredictorSpec};
/// use stbpu_core::StConfig;
///
/// let spec = ModelSpec::new(
///     "ST_gshare_demo",
///     PredictorSpec::Gshare { bits: 12 },
///     MapperSpec::SecretToken(StConfig::default()),
/// );
/// let model = spec.build(42);
/// assert_eq!(model.name(), "ST_gshare_demo");
/// ```
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Model name reported in figures and [`stbpu_sim::SimReport`]s.
    pub label: String,
    /// Direction predictor.
    pub predictor: PredictorSpec,
    /// Mapper / protection substrate.
    pub mapper: MapperSpec,
    /// BTB geometry (defaults to match the mapper).
    pub btb: BtbSpec,
}

impl ModelSpec {
    /// Composes a spec; the BTB geometry defaults to
    /// [`BtbSpec::Conservative`] for the conservative mapper and
    /// [`BtbSpec::Skylake`] otherwise.
    pub fn new(label: &str, predictor: PredictorSpec, mapper: MapperSpec) -> Self {
        let btb = match mapper {
            MapperSpec::Conservative => BtbSpec::Conservative,
            _ => BtbSpec::Skylake,
        };
        ModelSpec {
            label: label.to_string(),
            predictor,
            mapper,
            btb,
        }
    }

    /// Overrides the BTB geometry.
    pub fn btb(mut self, btb: BtbSpec) -> Self {
        self.btb = btb;
        self
    }

    /// Builds the composed model as a sealed [`ModelCore`] variant, so
    /// sessions over it monomorphize. `seed` keys the secret-token
    /// generator (ignored by keyless mappers).
    pub fn build(&self, seed: u64) -> ModelCore {
        match self.predictor {
            PredictorSpec::SklCond => self.assemble(SklCond::new(), seed),
            PredictorSpec::Gshare { bits } => self.assemble(Gshare::new(1usize << bits), seed),
            PredictorSpec::Tage8 => self.assemble(Tage::new(TageConfig::kb8()), seed),
            PredictorSpec::Tage64 => self.assemble(Tage::new(TageConfig::kb64()), seed),
            PredictorSpec::Perceptron => {
                self.assemble(PerceptronPredictor::new(PerceptronConfig::default()), seed)
            }
        }
    }

    fn assemble<D>(&self, dir: D, seed: u64) -> ModelCore
    where
        D: DirectionPredictor + 'static,
        FullBpu<D, BaselineMapper>: Into<ModelCore>,
        FullBpu<D, ConservativeMapper>: Into<ModelCore>,
        FullBpu<D, StMapper>: Into<ModelCore>,
    {
        let (btb, full_fidelity) = match self.btb {
            BtbSpec::Skylake => (BtbConfig::skylake(), false),
            BtbSpec::Conservative => (BtbConfig::conservative(), true),
        };
        match self.mapper {
            MapperSpec::Baseline => {
                FullBpu::new(&self.label, dir, BaselineMapper::new(), btb, full_fidelity).into()
            }
            MapperSpec::Conservative => FullBpu::new(
                &self.label,
                dir,
                ConservativeMapper::new(),
                btb,
                full_fidelity,
            )
            .into(),
            MapperSpec::SecretToken(cfg) => FullBpu::new(
                &self.label,
                dir,
                StMapper::new(cfg, seed),
                btb,
                full_fidelity,
            )
            .into(),
        }
    }
}

/// Parsed `key=value` parameters from a `name@k=v,k2=v2` model spec.
#[derive(Clone, Debug, Default)]
pub struct ModelParams {
    entries: BTreeMap<String, f64>,
}

impl ModelParams {
    /// No parameters.
    pub fn empty() -> Self {
        ModelParams::default()
    }

    /// Parses the `k=v,k2=v2` tail of a model spec.
    fn parse(model: &str, tail: &str) -> Result<Self, EngineError> {
        let mut entries = BTreeMap::new();
        for pair in tail.split(',') {
            let Some((k, v)) = pair.split_once('=') else {
                return Err(EngineError::BadParam {
                    model: model.to_string(),
                    reason: format!("'{pair}' is not key=value"),
                });
            };
            let value: f64 = v.trim().parse().map_err(|_| EngineError::BadParam {
                model: model.to_string(),
                reason: format!("'{v}' is not a number for key '{k}'"),
            })?;
            entries.insert(k.trim().to_string(), value);
        }
        Ok(ModelParams { entries })
    }

    /// Looks up one parameter.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Rejects any parameter outside `allowed` — so a typo like
    /// `skl@r=0.05` errors instead of being silently ignored.
    pub fn ensure_only(&self, model: &str, allowed: &[&str]) -> Result<(), EngineError> {
        for key in self.entries.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(EngineError::BadParam {
                    model: model.to_string(),
                    reason: format!(
                        "unknown parameter '{key}' (accepted: {})",
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                });
            }
        }
        Ok(())
    }

    /// An [`StConfig`] from the `r` parameter (paper default when absent).
    pub fn st_config(&self, model: &str) -> Result<StConfig, EngineError> {
        match self.get("r") {
            None => Ok(StConfig::default()),
            Some(r) if r > 0.0 && r <= 1.0 => Ok(StConfig::with_r(r)),
            Some(r) => Err(EngineError::BadParam {
                model: model.to_string(),
                reason: format!("difficulty factor r={r} not in (0, 1]"),
            }),
        }
    }

    fn gshare_bits(&self, model: &str) -> Result<u32, EngineError> {
        match self.get("bits") {
            None => Ok(14),
            Some(b) if (4.0..=22.0).contains(&b) && b.fract() == 0.0 => Ok(b as u32),
            Some(b) => Err(EngineError::BadParam {
                model: model.to_string(),
                reason: format!("bits={b} must be an integer in 4..=22"),
            }),
        }
    }
}

type Builder = Arc<dyn Fn(&ModelParams, u64) -> Result<ModelCore, EngineError> + Send + Sync>;

struct Entry {
    summary: &'static str,
    builder: Builder,
    /// True for alias names (skipped by [`ModelRegistry::names`] so
    /// coverage iteration does not test one model thrice).
    alias: bool,
}

/// String-named model construction: `registry.build("st_skl@r=0.05", seed)`.
///
/// [`ModelRegistry::standard`] pre-registers every model of the paper's
/// evaluation (all four direction predictors, their ST_* variants, the
/// conservative model and a plain gshare). New compositions register
/// through [`ModelRegistry::register`] or [`ModelRegistry::register_spec`].
pub struct ModelRegistry {
    entries: BTreeMap<String, Entry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        ModelRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// The registry with the paper's models pre-registered.
    pub fn standard() -> Self {
        let mut reg = ModelRegistry::empty();

        reg.register(
            "skl",
            "unprotected Skylake-like baseline (SKLCond)",
            |p, _| {
                p.ensure_only("skl", &[])?;
                Ok(skl_baseline().into())
            },
        );
        reg.alias("skl", "sklcond");
        reg.alias("skl", "baseline");

        reg.register("st_skl", "secret-token SKLCond (param: r)", |p, seed| {
            Ok(st_skl(
                p.ensure_only("st_skl", &["r"]).and(p.st_config("st_skl"))?,
                seed,
            )
            .into())
        });
        reg.alias("st_skl", "st_sklcond");
        reg.alias("st_skl", "stbpu");

        reg.register("tage8", "unprotected TAGE-SC-L 8KB", |p, _| {
            p.ensure_only("tage8", &[])?;
            Ok(tage8_baseline().into())
        });
        reg.register(
            "st_tage8",
            "secret-token TAGE-SC-L 8KB (param: r)",
            |p, seed| {
                Ok(st_tage8(
                    p.ensure_only("st_tage8", &["r"])
                        .and(p.st_config("st_tage8"))?,
                    seed,
                )
                .into())
            },
        );

        reg.register("tage64", "unprotected TAGE-SC-L 64KB", |p, _| {
            p.ensure_only("tage64", &[])?;
            Ok(tage64_baseline().into())
        });
        reg.register(
            "st_tage64",
            "secret-token TAGE-SC-L 64KB (param: r)",
            |p, seed| {
                Ok(st_tage64(
                    p.ensure_only("st_tage64", &["r"])
                        .and(p.st_config("st_tage64"))?,
                    seed,
                )
                .into())
            },
        );

        reg.register("perceptron", "unprotected perceptron", |p, _| {
            p.ensure_only("perceptron", &[])?;
            Ok(perceptron_baseline().into())
        });
        reg.register(
            "st_perceptron",
            "secret-token perceptron (param: r)",
            |p, seed| {
                Ok(st_perceptron(
                    p.ensure_only("st_perceptron", &["r"])
                        .and(p.st_config("st_perceptron"))?,
                    seed,
                )
                .into())
            },
        );

        reg.register(
            "tagescl",
            "unprotected TAGE-SC-L 64KB + ITTAGE indirect targets",
            |p, _| {
                p.ensure_only("tagescl", &[])?;
                Ok(tagescl_baseline().into())
            },
        );
        reg.register(
            "st_tagescl",
            "secret-token TAGE-SC-L 64KB + ITTAGE (param: r)",
            |p, seed| {
                Ok(st_tagescl(
                    p.ensure_only("st_tagescl", &["r"])
                        .and(p.st_config("st_tagescl"))?,
                    seed,
                )
                .into())
            },
        );

        reg.register(
            "ittage",
            "unprotected SKLCond + ITTAGE indirect-target ablation",
            |p, _| {
                p.ensure_only("ittage", &[])?;
                Ok(ittage_baseline().into())
            },
        );
        reg.register(
            "st_ittage",
            "secret-token SKLCond + ITTAGE (param: r)",
            |p, seed| {
                Ok(st_ittage(
                    p.ensure_only("st_ittage", &["r"])
                        .and(p.st_config("st_ittage"))?,
                    seed,
                )
                .into())
            },
        );

        reg.register(
            "gshare",
            "plain gshare ablation model (param: bits)",
            |p, seed| {
                p.ensure_only("gshare", &["bits"])?;
                let bits = p.gshare_bits("gshare")?;
                Ok(ModelSpec::new(
                    &format!("gshare{bits}"),
                    PredictorSpec::Gshare { bits },
                    MapperSpec::Baseline,
                )
                .build(seed))
            },
        );
        reg.register(
            "st_gshare",
            "secret-token gshare (params: r, bits)",
            |p, seed| {
                p.ensure_only("st_gshare", &["r", "bits"])?;
                let bits = p.gshare_bits("st_gshare")?;
                let cfg = p.st_config("st_gshare")?;
                Ok(ModelSpec::new(
                    &format!("ST_gshare{bits}"),
                    PredictorSpec::Gshare { bits },
                    MapperSpec::SecretToken(cfg),
                )
                .build(seed))
            },
        );

        reg.register(
            "conservative",
            "full-tag half-capacity conservative model",
            |p, _| {
                p.ensure_only("conservative", &[])?;
                Ok(conservative().into())
            },
        );

        reg
    }

    /// Registers a named builder. Re-registering a name replaces it.
    /// Builders return a [`ModelCore`]: standard compositions convert via
    /// `.into()` (monomorphized variants); anything else wraps in
    /// [`ModelCore::Custom`] (`Box<dyn Bpu>` also converts via `.into()`).
    pub fn register<F>(&mut self, name: &str, summary: &'static str, builder: F)
    where
        F: Fn(&ModelParams, u64) -> Result<ModelCore, EngineError> + Send + Sync + 'static,
    {
        self.entries.insert(
            name.to_string(),
            Entry {
                summary,
                builder: Arc::new(builder),
                alias: false,
            },
        );
    }

    /// Registers a fixed [`ModelSpec`] composition under `name`. A
    /// secret-token spec accepts an `r` override (`name@r=0.01`).
    pub fn register_spec(&mut self, name: &str, summary: &'static str, spec: ModelSpec) {
        let owner = name.to_string();
        self.register(name, summary, move |p, seed| {
            let mut spec = spec.clone();
            match spec.mapper {
                MapperSpec::SecretToken(_) => {
                    p.ensure_only(&owner, &["r"])?;
                    if p.get("r").is_some() {
                        spec.mapper = MapperSpec::SecretToken(p.st_config(&owner)?);
                    }
                }
                _ => p.ensure_only(&owner, &[])?,
            }
            Ok(spec.build(seed))
        });
    }

    /// Registers `alias` as another name for `of`.
    pub fn alias(&mut self, of: &str, alias: &str) {
        let entry = self
            .entries
            .get(of)
            .expect("alias target must be registered");
        let (summary, builder) = (entry.summary, entry.builder.clone());
        self.entries.insert(
            alias.to_string(),
            Entry {
                summary,
                builder,
                alias: true,
            },
        );
    }

    /// Builds a model from a `name` or `name@key=value,..` spec string.
    /// Standard models come back as sealed [`ModelCore`] variants, so a
    /// `SimSession` over the result monomorphizes its hot loop.
    pub fn build(&self, spec: &str, seed: u64) -> Result<ModelCore, EngineError> {
        let spec = spec.trim();
        let (name, params) = match spec.split_once('@') {
            None => (spec, ModelParams::empty()),
            Some((name, tail)) => (name.trim(), ModelParams::parse(name.trim(), tail)?),
        };
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| EngineError::UnknownModel {
                name: name.to_string(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })?;
        (entry.builder)(&params, seed)
    }

    /// Canonical registered names (aliases excluded), sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(_, e)| !e.alias)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// One-line description of a registered name.
    pub fn summary(&self, name: &str) -> Option<&'static str> {
        self.entries.get(name).map(|e| e.summary)
    }

    /// Every registered name with its summary and alias flag, sorted by
    /// name — the single source of truth for CLI/help catalog output.
    pub fn catalog(&self) -> Vec<(&str, &'static str, bool)> {
        self.entries
            .iter()
            .map(|(n, e)| (n.as_str(), e.summary, e.alias))
            .collect()
    }

    /// Alias names only, sorted.
    pub fn alias_names(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(_, e)| e.alias)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Whether `name` (canonical or alias) resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::Bpu as _;

    #[test]
    fn canonical_names_cover_the_paper_models() {
        let reg = ModelRegistry::standard();
        for name in [
            "skl",
            "st_skl",
            "tage8",
            "st_tage8",
            "tage64",
            "st_tage64",
            "perceptron",
            "st_perceptron",
            "tagescl",
            "st_tagescl",
            "ittage",
            "st_ittage",
            "gshare",
            "st_gshare",
            "conservative",
        ] {
            assert!(reg.contains(name), "missing {name}");
        }
        assert_eq!(reg.names().len(), 15);
    }

    #[test]
    fn aliases_resolve_to_the_same_model() {
        let reg = ModelRegistry::standard();
        assert_eq!(reg.build("baseline", 1).unwrap().name(), "SKLCond");
        assert_eq!(reg.build("stbpu", 1).unwrap().name(), "ST_SKLCond");
    }

    #[test]
    fn params_parse_and_apply() {
        let reg = ModelRegistry::standard();
        assert_eq!(reg.build("st_skl@r=0.01", 1).unwrap().name(), "ST_SKLCond");
        assert_eq!(reg.build("gshare@bits=12", 1).unwrap().name(), "gshare12");
        assert_eq!(
            reg.build("st_gshare@bits=10,r=0.1", 1).unwrap().name(),
            "ST_gshare10"
        );
    }

    #[test]
    fn unknown_model_lists_known_names() {
        let reg = ModelRegistry::standard();
        match reg.build("no_such_model", 1) {
            Err(EngineError::UnknownModel { name, known }) => {
                assert_eq!(name, "no_such_model");
                assert!(known.contains(&"st_tage64".to_string()));
            }
            Err(other) => panic!("expected UnknownModel, got {other:?}"),
            Ok(_) => panic!("expected UnknownModel, got a model"),
        }
    }

    #[test]
    fn unknown_and_malformed_params_rejected() {
        let reg = ModelRegistry::standard();
        assert!(matches!(
            reg.build("skl@r=0.05", 1),
            Err(EngineError::BadParam { .. })
        ));
        assert!(matches!(
            reg.build("st_skl@r=zero", 1),
            Err(EngineError::BadParam { .. })
        ));
        assert!(matches!(
            reg.build("st_skl@r", 1),
            Err(EngineError::BadParam { .. })
        ));
        assert!(matches!(
            reg.build("st_skl@r=-0.4", 1),
            Err(EngineError::BadParam { .. })
        ));
        assert!(matches!(
            reg.build("gshare@bits=3", 1),
            Err(EngineError::BadParam { .. })
        ));
    }

    #[test]
    fn custom_registration_is_open() {
        let mut reg = ModelRegistry::standard();
        reg.register_spec(
            "my_model",
            "conservative-BTB TAGE experiment",
            ModelSpec::new("MyTage", PredictorSpec::Tage8, MapperSpec::Conservative),
        );
        assert_eq!(reg.build("my_model", 3).unwrap().name(), "MyTage");

        reg.register_spec(
            "my_st",
            "secret-token perceptron with default r",
            ModelSpec::new(
                "MyStPerceptron",
                PredictorSpec::Perceptron,
                MapperSpec::SecretToken(StConfig::default()),
            ),
        );
        // r override flows into the registered spec.
        assert_eq!(
            reg.build("my_st@r=0.5", 4).unwrap().name(),
            "MyStPerceptron"
        );
        assert!(matches!(
            reg.build("my_st@bits=9", 4),
            Err(EngineError::BadParam { .. })
        ));
    }
}

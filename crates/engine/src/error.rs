//! Engine error type.

use stbpu_sim::SimError;

/// Why a registry lookup or experiment run failed.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Model name not present in the registry.
    UnknownModel {
        /// The name that failed to resolve.
        name: String,
        /// Registered names, for the error message.
        known: Vec<String>,
    },
    /// A `name@key=value` spec contained a parameter the model does not
    /// accept, or a malformed parameter list.
    BadParam {
        /// The model name.
        model: String,
        /// Explanation.
        reason: String,
    },
    /// Protection policy name not recognized.
    UnknownProtection(String),
    /// Workload profile name not recognized.
    UnknownWorkload(String),
    /// Workload suite name not recognized (see `WorkloadSuite`).
    UnknownSuite(String),
    /// A scenario string did not have the `model:protection` shape.
    InvalidScenario(String),
    /// A workload's event source could not be opened (missing or
    /// unreadable trace file, failing custom factory…).
    WorkloadSource(String),
    /// The experiment declares no workloads or no scenarios.
    EmptyGrid(&'static str),
    /// A spec file (TOML/JSON experiment declaration) failed to read or
    /// parse.
    Spec(String),
    /// A simulation inside the experiment failed.
    Sim(SimError),
    /// A checkpoint could not be captured, saved, loaded or applied.
    Checkpoint(String),
    /// Sharded execution failed (bad shard count, hint-less stream,
    /// handoff state mismatch between a shard and its successor's
    /// checkpoint…).
    Shard(String),
    /// Phase clustering or phase-based estimation failed (undecodable
    /// `.stbp`, embedded checkpoint cut for a different configuration,
    /// stream/phase-file disagreement…).
    Phase(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownModel { name, known } => {
                write!(
                    f,
                    "unknown model '{name}' (registered: {})",
                    known.join(", ")
                )
            }
            EngineError::BadParam { model, reason } => {
                write!(f, "bad parameters for model '{model}': {reason}")
            }
            EngineError::UnknownProtection(p) => write!(
                f,
                "unknown protection '{p}' (expected unprotected|stbpu|ucode1|ucode2|conservative)"
            ),
            EngineError::UnknownWorkload(w) => write!(f, "unknown workload profile '{w}'"),
            EngineError::UnknownSuite(s) => write!(f, "unknown workload suite '{s}'"),
            EngineError::InvalidScenario(s) => write!(
                f,
                "invalid scenario '{s}' (expected 'model:protection', e.g. 'st_skl@r=0.05:stbpu')"
            ),
            EngineError::WorkloadSource(w) => write!(f, "workload source failed: {w}"),
            EngineError::EmptyGrid(what) => write!(f, "experiment declares no {what}"),
            EngineError::Spec(msg) => write!(f, "bad experiment spec: {msg}"),
            EngineError::Sim(e) => write!(f, "simulation failed: {e}"),
            EngineError::Checkpoint(msg) => write!(f, "checkpoint failed: {msg}"),
            EngineError::Shard(msg) => write!(f, "sharded run failed: {msg}"),
            EngineError::Phase(msg) => write!(f, "phase estimation failed: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

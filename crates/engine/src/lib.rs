//! Experiment engine for the STBPU reproduction: the open model registry
//! and the declarative scenario/experiment API every harness binary,
//! example and integration test is built on.
//!
//! The engine replaces two closed seams of the original workspace:
//!
//! * the `ModelKind` enum + `build_model` free function `stbpu-sim` used
//!   to carry (adding a predictor meant editing the sim crate; both are
//!   now removed) — superseded by the [`ModelRegistry`]: every direction
//!   predictor × mapper × BTB combination is constructible **by name**
//!   (`"skl"`, `"st_skl@r=0.05"`, `"tage64"`, `"st_gshare@bits=12"`, …),
//!   and downstream code can register new compositions without touching
//!   this crate;
//! * the per-binary trace → model → report loops in `crates/bench` —
//!   superseded by the [`Experiment`] builder, which declares
//!   `workloads × scenarios × seeds` grids, runs them in parallel
//!   ([`parallel_map`]) and returns a structured [`RunSet`] with JSON/CSV
//!   serialization and summary helpers.
//!
//! Grid cells are simulated through streaming `stbpu_sim::SimSession`s
//! over [`Workload`]-opened event sources: a workload can be a registered
//! profile name, an ad-hoc profile, a shared in-memory trace (borrowed,
//! never cloned), a line-format trace file streamed from disk, or a custom
//! source factory — and `Experiment::interval` attaches the built-in
//! interval recorder so every `RunRecord` carries an OAE-over-time series.
//!
//! # Quickstart
//!
//! ```
//! use stbpu_engine::{Experiment, Scenario};
//!
//! let set = Experiment::new("fig3-mini")
//!     .workload("525.x264")
//!     .scenarios(Scenario::fig3())
//!     .branches(4_000)
//!     .seed(42)
//!     .run()
//!     .unwrap();
//! assert_eq!(set.records().len(), 5);
//! let stbpu = set.records().iter().find(|r| r.report.protection == "STBPU").unwrap();
//! assert!(stbpu.report.oae > 0.5);
//! ```
//!
//! Single models come from the registry — built as sealed [`ModelCore`]
//! variants, so a `SimSession` over one monomorphizes its hot loop:
//!
//! ```
//! use stbpu_bpu::Bpu;
//! use stbpu_engine::ModelRegistry;
//!
//! let registry = ModelRegistry::standard();
//! let model = registry.build("st_tage64@r=0.01", 7).unwrap();
//! assert_eq!(model.name(), "ST_TAGE_SC_L_64KB");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod experiment;
pub mod minijson;
mod model_core;
mod parallel;
mod phases;
mod registry;
mod report;
mod resume;
mod shard;
mod spec;
mod stats;
mod suite;
mod workload;

pub use error::EngineError;
pub use experiment::{run_scenarios, Experiment, RunRecord, RunSet, Scenario};
pub use model_core::ModelCore;
pub use parallel::parallel_map;
pub use phases::{
    build_phase_file, run_phase_file, run_phases, run_phases_vs_full, PhaseBuildOptions, PhaseRun,
    COLD_WARM_FLOOR_BRANCHES,
};
pub use registry::{BtbSpec, MapperSpec, ModelParams, ModelRegistry, ModelSpec, PredictorSpec};
pub use report::{
    auto_protection, csv_header, protection_from_str, report_to_csv_row, report_to_json,
};
pub use shard::{
    cut_checkpoints, resume_session, resume_to_end, run_sequential, run_sharded, ShardConfig,
    ShardRun, MAX_SHARDS,
};
pub use spec::ExperimentSpec;
pub use stats::{geomean, mean};
pub use suite::WorkloadSuite;
pub use workload::{SourceFactory, Workload};

//! Phase-file construction and phase-based whole-trace estimation — the
//! engine half of the SimPoint pipeline (`stbpu_phases` holds the
//! clustering and the `.stbp` codec).
//!
//! **Build** ([`build_phase_file`]): one streaming BBV pass over the
//! workload ([`stbpu_trace::extract_bbv`]), seeded k-means over the
//! slices ([`stbpu_phases::cluster_slices`]), and — optionally — one
//! checkpoint-cutting pass ([`crate::cut_checkpoints`]) that embeds a
//! warm `.stck` snapshot at every representative's start branch. A phase
//! file without embedded checkpoints is *model-independent*: the same
//! `.stbp` estimates any scheme (each representative is simulated from a
//! cold model repositioned via `skip_events`). Embedded checkpoints pin
//! the file to one `(model, protection, seed)` but make each
//! representative start from the exact warm state of a full run — with
//! `k` = the slice count this reproduces full simulation bit-exactly
//! (test-enforced).
//!
//! **Estimate** ([`run_phases`]): simulate only the representatives, in
//! parallel via [`parallel_map`], measuring each phase's counter deltas
//! ([`stbpu_bpu::BpuStats`] before/after), then reconstruct whole-trace
//! totals as the branch-weighted sum `Σ weightⱼ·deltaⱼ/repⱼ` in u128
//! integer arithmetic — so when `weightⱼ = repⱼ` every term is exactly
//! `deltaⱼ` and the reconstruction is lossless. Rates (OAE, direction,
//! target) divide the reconstructed numerators exactly the way a full
//! run's report does.
//!
//! Estimation always corresponds to a `Warmup::Branches(0)` full run:
//! phase weights partition the whole stream, so there is no warm-up
//! prefix to exclude — which is also what makes the weighted sum an
//! unbiased reconstruction.

use crate::error::EngineError;
use crate::parallel::parallel_map;
use crate::registry::ModelRegistry;
use crate::shard::{cut_checkpoints, resolve_threads, resume_session, run_sequential, ShardConfig};
use crate::workload::Workload;
use stbpu_bpu::Bpu;
use stbpu_phases::{cluster_slices, phase_entries, ClusterConfig, PhaseEntry, PhaseFile};
use stbpu_sim::{
    Checkpoint, IntervalWindow, OwnedSession, Protection, SessionOptions, SimReport, Warmup,
};
use stbpu_trace::{extract_bbv, EventSource, TraceEvent};

/// Cold-start warm-up floor: feeding fewer branches than this leaves
/// table-driven predictors (TAGE banks, the BTB) visibly cold no matter
/// how small the slices are, so the half-slice warm-up never drops
/// below it.
pub const COLD_WARM_FLOOR_BRANCHES: u64 = 10_000;

/// How to build a phase file.
#[derive(Clone, Debug)]
pub struct PhaseBuildOptions {
    /// Slice size in branch events.
    pub slice_branches: u64,
    /// Clustering configuration (projection dims, `k` scan, seed).
    pub cluster: ClusterConfig,
    /// Embed a warm `.stck` checkpoint per phase, cut while simulating
    /// this `(model spec, protection)` — pinning the file to that
    /// configuration. `None` keeps the file model-independent.
    pub embed: Option<(String, Protection)>,
}

impl Default for PhaseBuildOptions {
    fn default() -> Self {
        PhaseBuildOptions {
            slice_branches: stbpu_trace::DEFAULT_SLICE_BRANCHES,
            cluster: ClusterConfig::default(),
            embed: None,
        }
    }
}

/// The result of one phase-based estimation.
#[derive(Clone, Debug)]
pub struct PhaseRun {
    /// The reconstructed whole-trace report. `branches` is the full
    /// stream's branch count; the counter fields are weighted-sum
    /// estimates (exact when `k` equals the slice count and checkpoints
    /// are embedded).
    pub report: SimReport,
    /// Estimated mispredictions per kilo-instruction over the whole
    /// stream.
    pub mpki: f64,
    /// Number of phases simulated.
    pub phases: usize,
    /// How many of them warm-started from an embedded checkpoint.
    pub warm_phases: usize,
    /// Branch events actually simulated (Σ representative sizes plus any
    /// cold-start warm-up fed) — the simulated-branch speedup is
    /// `total_branches / simulated_branches`.
    pub simulated_branches: u64,
}

fn source_err(e: stbpu_trace::SourceError) -> EngineError {
    EngineError::WorkloadSource(e.to_string())
}

/// Profiles `workload` (one streaming BBV pass), clusters the slices,
/// and assembles a [`PhaseFile`] — plus one checkpoint-cutting pass when
/// [`PhaseBuildOptions::embed`] asks for warm starts.
///
/// # Errors
///
/// Source failures ([`EngineError::WorkloadSource`]), registry errors
/// for an unknown embed spec, and [`EngineError::Phase`] when the stream
/// yields no slices or the cut pass disagrees with the BBV coordinates.
pub fn build_phase_file(
    registry: &ModelRegistry,
    seed: u64,
    workload: &Workload,
    branches: usize,
    opts: &PhaseBuildOptions,
) -> Result<PhaseFile, EngineError> {
    workload.validate()?;
    let bbv = {
        let mut source = workload.open(seed, branches)?;
        extract_bbv(source.as_mut(), opts.slice_branches).map_err(source_err)?
    };
    if bbv.slices.is_empty() {
        return Err(EngineError::Phase(format!(
            "stream '{}' produced no slices — nothing to cluster",
            bbv.workload
        )));
    }
    let clustering = cluster_slices(&bbv.slices, &opts.cluster);
    let mut entries = phase_entries(&bbv, &clustering);

    if let Some((model_spec, protection)) = &opts.embed {
        let targets: Vec<u64> = entries.iter().map(|e| e.start_branch).collect();
        let cfg = ShardConfig {
            shards: entries.len().max(1),
            warmup: Warmup::Branches(0),
            interval: None,
            threads: None,
            checkpoint_dir: None,
        };
        let cps = cut_checkpoints(
            registry,
            model_spec,
            *protection,
            seed,
            workload,
            branches,
            &cfg,
            &targets,
        )?;
        for (entry, cp) in entries.iter_mut().zip(&cps) {
            if cp.events_consumed != entry.start_event || cp.branches_seen != entry.start_branch {
                return Err(EngineError::Phase(format!(
                    "checkpoint cut at event {} / branch {} does not match the BBV slice \
                     boundary at event {} / branch {}",
                    cp.events_consumed, cp.branches_seen, entry.start_event, entry.start_branch
                )));
            }
            entry.checkpoint = cp.to_bytes();
        }
    }

    Ok(PhaseFile {
        workload: workload.label(),
        seed,
        total_branches: bbv.total_branches,
        total_instructions: bbv.total_instructions,
        total_events: bbv.total_events,
        slice_branches: bbv.slice_branches,
        cluster_seed: opts.cluster.seed,
        phases: entries,
    })
}

/// The predictor counters a phase delta is measured over.
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    branches: u64,
    effective_correct: u64,
    cond: u64,
    cond_correct: u64,
    target_needed: u64,
    target_correct: u64,
    mispredictions: u64,
    evictions: u64,
    flushes: u64,
    rerandomizations: u64,
}

fn snapshot<B: Bpu>(session: &OwnedSession<B>) -> Counters {
    let s = session.model().stats();
    Counters {
        branches: s.branches,
        effective_correct: s.effective_correct,
        cond: s.cond,
        cond_correct: s.cond_correct,
        target_needed: s.target_needed,
        target_correct: s.target_correct,
        mispredictions: s.mispredictions,
        evictions: s.btb_evictions,
        flushes: s.flushes,
        rerandomizations: session.model().rerandomizations(),
    }
}

fn delta(before: &Counters, after: &Counters) -> Counters {
    Counters {
        branches: after.branches - before.branches,
        effective_correct: after.effective_correct - before.effective_correct,
        cond: after.cond - before.cond,
        cond_correct: after.cond_correct - before.cond_correct,
        target_needed: after.target_needed - before.target_needed,
        target_correct: after.target_correct - before.target_correct,
        mispredictions: after.mispredictions - before.mispredictions,
        evictions: after.evictions - before.evictions,
        flushes: after.flushes - before.flushes,
        rerandomizations: after.rerandomizations - before.rerandomizations,
    }
}

/// Branch-counted reader over an event source. Batches survive across
/// calls, so consecutive `advance` calls split a pulled batch exactly at
/// the branch that reaches each target (shard-cut style) without losing
/// the remainder.
struct BranchCursor<'a> {
    source: &'a mut dyn EventSource,
    buf: Vec<TraceEvent>,
    lo: usize,
}

impl<'a> BranchCursor<'a> {
    fn new(source: &'a mut dyn EventSource) -> Self {
        BranchCursor {
            source,
            buf: Vec::new(),
            lo: 0,
        }
    }

    /// Advances exactly `need` branch events, handing every consumed
    /// chunk to `sink` (pass a no-op to discard a prefix, or
    /// `feed_batch` to simulate it), erroring if the stream ends first.
    fn advance(
        &mut self,
        need: u64,
        mut sink: impl FnMut(&[TraceEvent]) -> Result<(), EngineError>,
    ) -> Result<(), EngineError> {
        let mut remaining = need;
        while remaining > 0 {
            if self.lo >= self.buf.len() {
                self.lo = 0;
                if self
                    .source
                    .next_batch(&mut self.buf, 4_096)
                    .map_err(source_err)?
                    == 0
                {
                    return Err(EngineError::Phase(format!(
                        "stream ended {remaining} branches before the phase slice did"
                    )));
                }
            }
            let mut hi = self.lo;
            while hi < self.buf.len() && remaining > 0 {
                if matches!(self.buf[hi], TraceEvent::Branch { .. }) {
                    remaining -= 1;
                }
                hi += 1;
            }
            sink(&self.buf[self.lo..hi])?;
            self.lo = hi;
        }
        Ok(())
    }
}

/// Simulates one phase's representative slice and returns its counter
/// delta — measured as the counter difference across exactly the slice's
/// branches, so anything fed before the snapshot is pure architectural
/// warm-up.
///
/// With an embedded checkpoint (consistent with the requested
/// configuration) the session resumes the exact warm state of a full run
/// at the slice boundary. Without one, the model starts cold: the stream
/// is scanned (not simulated) up to half a slice (floored at
/// [`COLD_WARM_FLOOR_BRANCHES`]) before the boundary, that stretch is
/// fed as warm-up, and only then does measurement start — the standard
/// SimPoint warm-up compromise, bounding cold-start bias at the cost of
/// half an extra simulated slice per phase (the budget behind the
/// documented estimation error bound and the ≥10x simulated-branch
/// speedup the bench suite gates).
fn run_one_phase(
    registry: &ModelRegistry,
    model_spec: &str,
    protection: Protection,
    pf: &PhaseFile,
    base: &Workload,
    entry: &PhaseEntry,
) -> Result<(Counters, bool, u64), EngineError> {
    let mut source = base.open(pf.seed, pf.total_branches as usize)?;
    let (mut session, warm, warm_branches) = if entry.has_checkpoint() {
        let cp = Checkpoint::from_bytes(&entry.checkpoint).map_err(|e| {
            EngineError::Phase(format!(
                "phase {}: embedded checkpoint is corrupt: {e}",
                entry.rep_slice
            ))
        })?;
        if cp.model_spec != model_spec || cp.protection != protection || cp.seed != pf.seed {
            return Err(EngineError::Phase(format!(
                "phase {}: embedded checkpoint was cut for {} under {} (seed {}) — requested {} \
                 under {} (seed {}); rebuild the phase file without --embed-model for a \
                 model-independent one",
                entry.rep_slice,
                cp.model_spec,
                cp.protection.label(),
                cp.seed,
                model_spec,
                protection.label(),
                pf.seed
            )));
        }
        let session = resume_session(registry, &cp)?;
        let skipped = source.skip_events(cp.events_consumed).map_err(source_err)?;
        if skipped != cp.events_consumed {
            return Err(EngineError::Phase(format!(
                "phase {}: stream has only {skipped} of the {} events its checkpoint consumed",
                entry.rep_slice, cp.events_consumed
            )));
        }
        (session, true, 0)
    } else {
        let model = registry.build(model_spec, pf.seed)?;
        let threads = resolve_threads(None, source.thread_count());
        let mut session = OwnedSession::new(
            model,
            protection,
            SessionOptions {
                warmup: Warmup::Branches(0),
                threads,
                interval: None,
                workload: None,
            },
        )?;
        session.begin(source.name(), source.branch_hint())?;
        // Warm over the half-slice preceding the representative (any
        // branch position is a valid cut point, so the warm-up start
        // needs no slice alignment), floored at the predictor warm-up
        // horizon for small slices.
        let warm_branches = (pf.slice_branches / 2)
            .max(COLD_WARM_FLOOR_BRANCHES)
            .min(entry.start_branch);
        (session, false, warm_branches)
    };

    let mut cursor = BranchCursor::new(source.as_mut());
    if !warm {
        cursor.advance(entry.start_branch - warm_branches, |_| Ok(()))?;
        cursor.advance(warm_branches, |chunk| {
            session.feed_batch(chunk).map_err(EngineError::from)
        })?;
    }
    let before = snapshot(&session);
    cursor.advance(entry.rep_branches, |chunk| {
        session.feed_batch(chunk).map_err(EngineError::from)
    })?;
    let after = snapshot(&session);
    let d = delta(&before, &after);
    if d.branches != entry.rep_branches {
        return Err(EngineError::Phase(format!(
            "phase {}: measured {} branches, expected {}",
            entry.rep_slice, d.branches, entry.rep_branches
        )));
    }
    Ok((d, warm, warm_branches))
}

/// Runs `model_spec` under `protection` over a [`Workload::Phases`]
/// workload: every representative slice is simulated (in parallel via
/// [`parallel_map`]) and the whole-trace report is reconstructed as the
/// branch-weighted sum of the per-phase deltas.
///
/// # Errors
///
/// [`EngineError::Phase`] when `workload` is not a `Phases` workload or
/// any phase fails (see [`build_phase_file`] for how files are made),
/// plus registry/source/simulation errors.
pub fn run_phases(
    registry: &ModelRegistry,
    model_spec: &str,
    protection: Protection,
    workload: &Workload,
) -> Result<PhaseRun, EngineError> {
    let (file, base) = match workload {
        Workload::Phases { file, base } => (file.as_ref(), base.as_ref()),
        other => {
            return Err(EngineError::Phase(format!(
                "run_phases needs a Workload::Phases, got {other:?}"
            )))
        }
    };
    run_phase_file(registry, model_spec, protection, file, base)
}

/// [`run_phases`] over an explicit file + base pair.
///
/// # Errors
///
/// See [`run_phases`].
pub fn run_phase_file(
    registry: &ModelRegistry,
    model_spec: &str,
    protection: Protection,
    pf: &PhaseFile,
    base: &Workload,
) -> Result<PhaseRun, EngineError> {
    if pf.phases.is_empty() {
        return Err(EngineError::Phase(format!(
            "phase file for '{}' declares no phases",
            pf.workload
        )));
    }
    base.validate()?;
    // Build once up front: validates the spec before any worker runs and
    // supplies the report's model name.
    let model_name = registry.build(model_spec, pf.seed)?.name().to_string();

    let idx: Vec<usize> = (0..pf.phases.len()).collect();
    let results = parallel_map(idx, |&i| {
        run_one_phase(registry, model_spec, protection, pf, base, &pf.phases[i])
    });

    // Weighted reconstruction in u128: when weight == rep (k = slice
    // count) each term is exactly the measured delta, so the whole-trace
    // totals — and the rate divisions below — match a full run bit for
    // bit.
    let mut tot = Counters::default();
    let mut est = [0u128; 9];
    let mut warm_phases = 0usize;
    let mut simulated_branches = 0u64;
    for (entry, res) in pf.phases.iter().zip(results) {
        let (d, warm, warm_fed) = res?;
        warm_phases += usize::from(warm);
        simulated_branches += entry.rep_branches + warm_fed;
        let w = entry.weight_branches as u128;
        let rep = entry.rep_branches.max(1) as u128;
        let scale = |v: u64| -> u128 { w * v as u128 / rep };
        est[0] += scale(d.effective_correct);
        est[1] += scale(d.cond);
        est[2] += scale(d.cond_correct);
        est[3] += scale(d.target_needed);
        est[4] += scale(d.target_correct);
        est[5] += scale(d.mispredictions);
        est[6] += scale(d.evictions);
        est[7] += scale(d.flushes);
        est[8] += scale(d.rerandomizations);
    }
    tot.branches = pf.total_branches;
    tot.effective_correct = est[0] as u64;
    tot.cond = est[1] as u64;
    tot.cond_correct = est[2] as u64;
    tot.target_needed = est[3] as u64;
    tot.target_correct = est[4] as u64;
    tot.mispredictions = est[5] as u64;
    tot.evictions = est[6] as u64;
    tot.flushes = est[7] as u64;
    tot.rerandomizations = est[8] as u64;

    // The same rate expressions BpuStats uses, over the reconstructed
    // numerators.
    let oae = if tot.branches == 0 {
        1.0
    } else {
        tot.effective_correct as f64 / tot.branches as f64
    };
    let direction_rate = if tot.cond == 0 {
        1.0
    } else {
        tot.cond_correct as f64 / tot.cond as f64
    };
    let target_rate = if tot.target_needed == 0 {
        1.0
    } else {
        tot.target_correct as f64 / tot.target_needed as f64
    };
    let mpki = if pf.total_instructions == 0 {
        0.0
    } else {
        tot.mispredictions as f64 * 1_000.0 / pf.total_instructions as f64
    };

    Ok(PhaseRun {
        report: SimReport {
            model: model_name,
            protection: protection.label(),
            workload: pf.workload.clone(),
            oae,
            direction_rate,
            target_rate,
            branches: tot.branches,
            mispredictions: tot.mispredictions,
            evictions: tot.evictions,
            flushes: tot.flushes,
            rerandomizations: tot.rerandomizations,
        },
        mpki,
        phases: pf.phases.len(),
        warm_phases,
        simulated_branches,
    })
}

/// Runs the estimation *and* the full reference simulation the estimate
/// approximates (same stream, `Warmup::Branches(0)`), for
/// estimated-vs-full error reporting.
///
/// # Errors
///
/// See [`run_phases`] and [`run_sequential`].
pub fn run_phases_vs_full(
    registry: &ModelRegistry,
    model_spec: &str,
    protection: Protection,
    workload: &Workload,
) -> Result<(PhaseRun, SimReport, Vec<IntervalWindow>), EngineError> {
    let (file, base) = match workload {
        Workload::Phases { file, base } => (file.as_ref(), base.as_ref()),
        other => {
            return Err(EngineError::Phase(format!(
                "run_phases_vs_full needs a Workload::Phases, got {other:?}"
            )))
        }
    };
    let run = run_phase_file(registry, model_spec, protection, file, base)?;
    let (full, windows) = run_sequential(
        registry,
        model_spec,
        protection,
        file.seed,
        base,
        file.total_branches as usize,
        Warmup::Branches(0),
        None,
        None,
    )?;
    Ok((run, full, windows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ModelRegistry {
        ModelRegistry::standard()
    }

    fn build_opts(slice: u64, forced_k: Option<usize>) -> PhaseBuildOptions {
        PhaseBuildOptions {
            slice_branches: slice,
            cluster: ClusterConfig {
                forced_k,
                ..ClusterConfig::default()
            },
            embed: None,
        }
    }

    #[test]
    fn build_is_deterministic_and_weights_partition() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        let a = build_phase_file(&reg, 7, &wl, 12_000, &build_opts(1_000, None)).unwrap();
        let b = build_phase_file(&reg, 7, &wl, 12_000, &build_opts(1_000, None)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.total_branches, 12_000);
        let w: u64 = a.phases.iter().map(|p| p.weight_branches).sum();
        assert_eq!(w, a.total_branches);
        assert!(!a.phases.is_empty() && a.phases.len() <= 12);
    }

    #[test]
    fn cold_estimate_round_trips_the_codec_and_stays_close() {
        let reg = registry();
        let wl = Workload::Named("505.mcf".to_string());
        let pf = build_phase_file(&reg, 3, &wl, 20_000, &build_opts(2_000, None)).unwrap();
        let pf = PhaseFile::from_bytes(&pf.to_bytes()).unwrap();
        // Representatives cover strictly less than the stream; warm-up
        // adds at most max(half a slice, the floor) per phase on top.
        let rep_branches = pf.simulated_branches();
        let per_phase_warm = (pf.slice_branches / 2).max(COLD_WARM_FLOOR_BRANCHES);
        let ceiling = rep_branches + pf.phases.len() as u64 * per_phase_warm;
        assert!(rep_branches < 20_000);
        let phased = Workload::phases(pf, None).unwrap();
        let run = run_phases(&reg, "st_skl@r=0.05", Protection::Stbpu, &phased).unwrap();
        assert_eq!(run.report.branches, 20_000);
        assert_eq!(run.warm_phases, 0);
        assert!(run.simulated_branches >= rep_branches && run.simulated_branches <= ceiling);
        let (_, full, _) =
            run_phases_vs_full(&reg, "st_skl@r=0.05", Protection::Stbpu, &phased).unwrap();
        assert!(
            (run.report.oae - full.oae).abs() < 0.15,
            "estimate {} vs full {}",
            run.report.oae,
            full.oae
        );
    }

    #[test]
    fn warm_k_equals_slices_reproduces_full_simulation_exactly() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        let n_slices = 8usize;
        let opts = PhaseBuildOptions {
            slice_branches: 2_000,
            cluster: ClusterConfig {
                forced_k: Some(n_slices),
                ..ClusterConfig::default()
            },
            embed: Some(("st_skl@r=0.05".to_string(), Protection::Stbpu)),
        };
        let pf = build_phase_file(&reg, 5, &wl, 16_000, &opts).unwrap();
        assert_eq!(pf.phases.len(), n_slices);
        assert!(pf.fully_warm());
        let phased = Workload::phases(pf, None).unwrap();
        let (run, full, _) =
            run_phases_vs_full(&reg, "st_skl@r=0.05", Protection::Stbpu, &phased).unwrap();
        assert_eq!(run.report.oae.to_bits(), full.oae.to_bits());
        assert_eq!(
            run.report.direction_rate.to_bits(),
            full.direction_rate.to_bits()
        );
        assert_eq!(run.report.target_rate.to_bits(), full.target_rate.to_bits());
        assert_eq!(run.report.branches, full.branches);
        assert_eq!(run.report.mispredictions, full.mispredictions);
        assert_eq!(run.report.evictions, full.evictions);
        assert_eq!(run.report.flushes, full.flushes);
        assert_eq!(run.report.rerandomizations, full.rerandomizations);
        assert_eq!(run.warm_phases, n_slices);
    }

    #[test]
    fn mismatched_embedded_checkpoint_is_rejected() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        let opts = PhaseBuildOptions {
            slice_branches: 2_000,
            cluster: ClusterConfig::default(),
            embed: Some(("st_skl@r=0.05".to_string(), Protection::Stbpu)),
        };
        let pf = build_phase_file(&reg, 5, &wl, 8_000, &opts).unwrap();
        let phased = Workload::phases(pf, None).unwrap();
        let err = run_phases(&reg, "skl", Protection::Unprotected, &phased).unwrap_err();
        match err {
            EngineError::Phase(msg) => assert!(msg.contains("was cut for"), "{msg}"),
            other => panic!("expected Phase error, got {other:?}"),
        }
    }

    #[test]
    fn non_phases_workload_is_rejected() {
        let reg = registry();
        let wl = Workload::Named("541.leela".to_string());
        assert!(matches!(
            run_phases(&reg, "skl", Protection::Unprotected, &wl),
            Err(EngineError::Phase(_))
        ));
    }
}

//! The attack harness: a transparent BPU instance shared by attacker and
//! victim "code", with the storage discipline of the full models.
//!
//! Unlike the opaque [`stbpu_bpu::Bpu`] models, the harness exposes what an
//! attacker measures through timing in reality — whether *their own* branch
//! was predicted and to where — while keeping the defender's monitoring
//! MSRs live (mispredictions and evictions reported to the mapper, which
//! re-randomizes secret tokens when thresholds trip).

use stbpu_bpu::{
    BaselineMapper, BranchKind, BranchRecord, Btb, BtbConfig, EntityId, HistoryCtx, Mapper, Pht,
    VirtAddr, PHT_ENTRIES,
};
use stbpu_core::{StConfig, StMapper};

/// What one executed branch observed — the attacker's "timing" view.
#[derive(Clone, Copy, Debug)]
pub struct ExecOutcome {
    /// Target the BPU predicted before resolution (None = BTB/RSB miss).
    pub predicted_target: Option<VirtAddr>,
    /// Direction the PHT predicted (conditionals only).
    pub predicted_taken: Option<bool>,
    /// The branch mispredicted (direction or target).
    pub mispredicted: bool,
    /// This branch's BTB insertion evicted a valid entry.
    pub evicted: bool,
}

/// A transparent BPU under attack.
pub struct AttackBpu {
    mapper: Box<dyn Mapper>,
    btb: Btb,
    pht: Pht,
    hist: HistoryCtx,
    current: EntityId,
}

/// Tag-space bit separating BTB mode-two entries (mirrors the full model).
const MODE2_BIT: u64 = 1 << 62;

impl AttackBpu {
    /// A baseline (unprotected) BPU.
    pub fn baseline() -> Self {
        Self::with_mapper(Box::new(BaselineMapper::new()))
    }

    /// An STBPU-protected BPU with the given configuration.
    pub fn stbpu(cfg: StConfig, seed: u64) -> Self {
        Self::with_mapper(Box::new(StMapper::new(cfg, seed)))
    }

    fn with_mapper(mapper: Box<dyn Mapper>) -> Self {
        AttackBpu {
            mapper,
            btb: Btb::new(BtbConfig::skylake()),
            pht: Pht::new(PHT_ENTRIES),
            hist: HistoryCtx::new(),
            current: EntityId::user(0),
        }
    }

    /// Switches the running software entity (context or mode switch).
    pub fn switch_to(&mut self, entity: EntityId) {
        self.current = entity;
        self.mapper.set_entity(0, entity);
    }

    /// The entity currently running.
    pub fn current_entity(&self) -> EntityId {
        self.current
    }

    /// Number of secret-token re-randomizations so far (0 on baseline).
    pub fn rerandomizations(&self) -> u64 {
        self.mapper.rerandomizations()
    }

    /// Total BTB evictions observed by the structure.
    pub fn btb_evictions(&self) -> u64 {
        self.btb.evictions()
    }

    /// Direct access to the PHT counter backing `pc` (the side-channel
    /// observable BranchScope reconstructs via timing).
    pub fn pht_counter(&self, pc: u64) -> u8 {
        let idx = self.mapper.pht1(0, pc) % self.pht.len();
        self.pht.counter(idx)
    }

    /// Executes one branch of the current entity and returns what its
    /// owner could observe.
    pub fn exec(&mut self, rec: &BranchRecord) -> ExecOutcome {
        let pc = rec.pc.raw();
        let coord = self.mapper.btb1(0, pc);
        let set = coord.index % self.btb.config().sets;

        // --- Predict ---
        let predicted_taken = if rec.kind.is_conditional() {
            let idx = self.mapper.pht1(0, pc) % self.pht.len();
            Some(self.pht.predict(idx))
        } else {
            None
        };
        let predicted_target = match rec.kind {
            BranchKind::Return => match self.hist.rsb.pop() {
                Some(p) => Some(VirtAddr::extend(
                    rec.pc,
                    self.mapper.decrypt_target(0, p as u32),
                )),
                // Underflow: fall back to the indirect predictor
                // (Section II-A) — the path the RSB eviction-away attack
                // poisons.
                None => {
                    let tag2 = self.mapper.btb2_tag(0, self.hist.bhb());
                    self.btb
                        .lookup(set, tag2 | MODE2_BIT, coord.offset)
                        .or_else(|| self.btb.lookup(set, coord.tag, coord.offset))
                        .map(|p| VirtAddr::extend(rec.pc, self.mapper.decrypt_target(0, p as u32)))
                }
            },
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                let tag2 = self.mapper.btb2_tag(0, self.hist.bhb());
                self.btb
                    .lookup(set, tag2 | MODE2_BIT, coord.offset)
                    .or_else(|| self.btb.lookup(set, coord.tag, coord.offset))
                    .map(|p| VirtAddr::extend(rec.pc, self.mapper.decrypt_target(0, p as u32)))
            }
            _ => self
                .btb
                .lookup(set, coord.tag, coord.offset)
                .map(|p| VirtAddr::extend(rec.pc, self.mapper.decrypt_target(0, p as u32))),
        };

        // --- Resolve ---
        let dir_ok = predicted_taken.map(|p| p == rec.taken).unwrap_or(true);
        let tgt_ok = if rec.taken {
            predicted_target == Some(rec.target)
        } else {
            true
        };
        let mispredicted = !(dir_ok && tgt_ok);

        // --- Update ---
        let mut evicted = false;
        if rec.kind.is_conditional() {
            let idx = self.mapper.pht1(0, pc) % self.pht.len();
            self.pht.train(idx, rec.taken);
        }
        if rec.taken {
            let payload = self.mapper.encrypt_target(0, rec.target.low32()) as u64;
            let tag = if rec.kind.is_indirect() && !rec.kind.is_return() {
                self.mapper.btb2_tag(0, self.hist.bhb()) | MODE2_BIT
            } else {
                coord.tag
            };
            if !rec.kind.is_return() && self.btb.insert(set, tag, coord.offset, payload).is_some() {
                evicted = true;
            }
            self.hist.push_edge(rec.pc, rec.target);
        }
        if rec.kind.is_call() {
            let p = self.mapper.encrypt_target(0, rec.fallthrough().low32()) as u64;
            self.hist.rsb.push(p);
        }

        // --- Monitor (strictly after mapping) ---
        if evicted {
            self.mapper.note_eviction(0);
        }
        if mispredicted {
            self.mapper.note_misprediction(0);
        }

        ExecOutcome {
            predicted_target,
            predicted_taken,
            mispredicted,
            evicted,
        }
    }

    /// Convenience: executes a taken direct jump.
    pub fn jump(&mut self, pc: u64, target: u64) -> ExecOutcome {
        self.exec(&BranchRecord::taken(pc, BranchKind::DirectJump, target))
    }

    /// Convenience: executes a conditional branch.
    pub fn cond(&mut self, pc: u64, taken: bool) -> ExecOutcome {
        self.exec(&BranchRecord::conditional(pc, taken, pc + 0x40))
    }
}

impl std::fmt::Debug for AttackBpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AttackBpu {{ entity: {}, rerandomizations: {} }}",
            self.current,
            self.rerandomizations()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_own_branch() {
        let mut b = AttackBpu::baseline();
        assert!(b.jump(0x40_0000, 0x41_0000).mispredicted);
        let o = b.jump(0x40_0000, 0x41_0000);
        assert!(!o.mispredicted);
        assert_eq!(o.predicted_target, Some(VirtAddr::new(0x41_0000)));
    }

    #[test]
    fn baseline_shares_entries_across_entities() {
        let mut b = AttackBpu::baseline();
        b.switch_to(EntityId::user(1));
        b.jump(0x40_0000, 0x41_0000);
        b.switch_to(EntityId::user(2));
        // The reuse-based collision: entity 2 sees entity 1's target.
        let o = b.jump(0x40_0000, 0x99_0000);
        assert_eq!(o.predicted_target, Some(VirtAddr::new(0x41_0000)));
    }

    #[test]
    fn stbpu_isolates_entities() {
        let mut b = AttackBpu::stbpu(StConfig::default(), 1);
        b.switch_to(EntityId::user(1));
        b.jump(0x40_0000, 0x41_0000);
        b.switch_to(EntityId::user(2));
        let o = b.jump(0x40_0000, 0x99_0000);
        // Either a miss (different set/tag) or garbage (φ mismatch) —
        // never the victim's plaintext target.
        assert_ne!(o.predicted_target, Some(VirtAddr::new(0x41_0000)));
    }

    #[test]
    fn pht_counter_is_observable() {
        let mut b = AttackBpu::baseline();
        b.cond(0x1234, true);
        b.cond(0x1234, true);
        assert!(b.pht_counter(0x1234) >= 2);
    }

    #[test]
    fn misprediction_events_reach_the_monitor() {
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 3.0,
            ..StConfig::default()
        };
        let mut b = AttackBpu::stbpu(cfg, 2);
        b.switch_to(EntityId::user(1));
        for i in 0..16 {
            b.jump(0x1000 + i * 0x100, 0x9000); // cold: each first exec mispredicts
        }
        assert!(b.rerandomizations() >= 1, "monitor must have tripped");
    }
}

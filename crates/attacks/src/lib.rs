//! Collision-based BPU attack simulations and security analysis
//! (Sections II-B, III and VI of the paper).
//!
//! The crate has two halves:
//!
//! * [`analysis`] — the closed-form security analysis of Section VI:
//!   Equations (2)–(4), the attack-complexity table of §VI-5 (BTB reuse
//!   ≈ 6.9×10⁸ MISP / ≈ 2²¹ EV, PHT reuse ≈ 8.38×10⁵ MISP, BTB eviction
//!   ≈ 5.3×10⁵ EV, Spectre-v2 ≈ 2³¹ MISP) and the re-randomization
//!   thresholds Γ = r·C they imply.
//! * executable attacks — concrete implementations of every cell of the
//!   Table I attack surface ([`surface`]), run against both the baseline
//!   BPU and STBPU: reuse-based probing and BranchScope ([`reuse`]),
//!   Spectre-v2 / SpectreRSB target injection ([`inject`]), eviction-set
//!   construction with the GEM algorithm ([`eviction`]), same-address-space
//!   transient trojans ([`same_space`]) and denial-of-service ([`dos`]).
//! * [`telemetry`] — observer-driven instrumentation over full simulated
//!   streams: a `stbpu_sim::SimObserver` recording the branch-indexed
//!   timeline of re-randomizations and flushes (conflict-visibility
//!   analysis) without hand-rolling a simulation loop.
//!
//! Attacks run on an [`harness::AttackBpu`] — a deliberately transparent
//! BPU instance (BTB + PHT + RSB + mapper with the exact storage discipline
//! of the full models) that lets the attacker observe predictions the way a
//! real attacker observes timing, while the defender's monitoring MSRs
//! count events normally.
//!
//! ```
//! use stbpu_attacks::analysis;
//! let skl = analysis::BpuGeometry::skylake();
//! let c = analysis::complexity_table(&skl);
//! // The paper's §VI-5 numbers:
//! assert!((c.btb_reuse_misp / 6.9e8 - 1.0).abs() < 0.05);
//! assert!((c.pht_reuse_misp / 8.38e5 - 1.0).abs() < 0.05);
//! assert!((c.btb_eviction_ev / 5.3e5 - 1.0).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dos;
pub mod eviction;
pub mod harness;
pub mod inject;
pub mod reuse;
pub mod same_space;
pub mod surface;
pub mod telemetry;

//! Observer-driven attack telemetry over full trace simulations.
//!
//! The Table I attacks drive a transparent [`crate::harness::AttackBpu`]
//! directly, but questions like *"how visible is the defender's monitor
//! under a realistic workload?"* (conflict-visibility analyses in the
//! spirit of CIBPU, and speculative branch-predictor leakage measurement)
//! need instrumentation over a whole simulated stream. Instead of
//! hand-rolling another simulation loop, [`MonitorTelemetry`] is a
//! [`SimObserver`] that attaches to any `stbpu_sim::SimSession` and
//! records *when* (at which branch index) the defense acted: secret-token
//! re-randomizations and policy flushes — the events an attacker syncing
//! on wall-clock time could try to correlate.

use stbpu_bpu::{BranchOutcome, BranchRecord};
use stbpu_sim::{FlushKind, SimObserver};

/// Records the branch-indexed timeline of defensive events during a
/// simulated run.
///
/// ```
/// use stbpu_attacks::telemetry::MonitorTelemetry;
/// use stbpu_core::{st_skl, StConfig};
/// use stbpu_sim::{Protection, SessionOptions, SimSession, Warmup};
/// use stbpu_trace::{profiles, TraceGenerator};
///
/// let cfg = StConfig { r: 1.0, misp_complexity: 300.0, ..StConfig::default() };
/// let mut model = st_skl(cfg, 7);
/// let mut telemetry = MonitorTelemetry::new();
/// let mut session = SimSession::new(
///     &mut model,
///     Protection::Stbpu,
///     SessionOptions { warmup: Warmup::Branches(0), ..SessionOptions::default() },
/// )
/// .unwrap();
/// session.attach(&mut telemetry);
/// let p = profiles::by_name("541.leela").unwrap();
/// session.run(&mut TraceGenerator::new(p, 3).into_source(10_000)).unwrap();
/// session.finish();
/// assert!(!telemetry.rerand_marks().is_empty(), "aggressive thresholds trip");
/// ```
#[derive(Clone, Debug, Default)]
pub struct MonitorTelemetry {
    branches: u64,
    rerand_marks: Vec<u64>,
    flush_marks: Vec<u64>,
}

impl MonitorTelemetry {
    /// An empty recorder.
    pub fn new() -> Self {
        MonitorTelemetry::default()
    }

    /// Branches observed so far.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Branch index of every secret-token re-randomization, in order.
    pub fn rerand_marks(&self) -> &[u64] {
        &self.rerand_marks
    }

    /// Branch index of every policy flush, in order.
    pub fn flush_marks(&self) -> &[u64] {
        &self.flush_marks
    }

    /// Gaps (in branches) between consecutive re-randomizations — the
    /// attacker-observable rhythm of the defense. Empty with fewer than
    /// two marks.
    pub fn rerand_gaps(&self) -> Vec<u64> {
        self.rerand_marks.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Mean re-randomization gap, `None` with fewer than two marks.
    pub fn mean_rerand_gap(&self) -> Option<f64> {
        let gaps = self.rerand_gaps();
        if gaps.is_empty() {
            None
        } else {
            Some(gaps.iter().sum::<u64>() as f64 / gaps.len() as f64)
        }
    }
}

impl SimObserver for MonitorTelemetry {
    fn on_branch(&mut self, _tid: usize, _rec: &BranchRecord, _outcome: &BranchOutcome) {
        self.branches += 1;
    }

    fn on_flush(&mut self, _kind: FlushKind) {
        self.flush_marks.push(self.branches);
    }

    fn on_rerandomize(&mut self, _total: u64) {
        self.rerand_marks.push(self.branches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_core::{st_skl, StConfig};
    use stbpu_predictors::skl_baseline;
    use stbpu_sim::{Protection, SessionOptions, SimSession, Warmup};
    use stbpu_trace::{profiles, TraceGenerator};

    fn run_with_telemetry(
        model: &mut dyn stbpu_bpu::Bpu,
        policy: Protection,
        workload: &str,
        branches: usize,
    ) -> MonitorTelemetry {
        let mut telemetry = MonitorTelemetry::new();
        let mut session = SimSession::new(
            model,
            policy,
            SessionOptions {
                warmup: Warmup::Branches(0),
                ..SessionOptions::default()
            },
        )
        .unwrap();
        session.attach(&mut telemetry);
        let p = profiles::by_name(workload).unwrap();
        session
            .run(&mut TraceGenerator::new(p, 11).into_source(branches))
            .unwrap();
        session.finish();
        telemetry
    }

    #[test]
    fn stbpu_rerandomization_rhythm_is_observable() {
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 300.0,
            eviction_complexity: 300.0,
            ..StConfig::default()
        };
        let mut model = st_skl(cfg, 5);
        let t = run_with_telemetry(&mut model, Protection::Stbpu, "541.leela", 20_000);
        assert_eq!(t.branches(), 20_000);
        assert!(
            t.rerand_marks().len() >= 2,
            "thresholds at 300 events must trip repeatedly: {:?}",
            t.rerand_marks().len()
        );
        assert!(t.flush_marks().is_empty(), "STBPU never flushes");
        let mean_gap = t.mean_rerand_gap().unwrap();
        assert!(
            mean_gap > 100.0,
            "re-randomizations are spaced by threshold accumulation: {mean_gap}"
        );
        // Marks are strictly ordered.
        assert!(t.rerand_marks().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ucode_flush_marks_track_os_activity() {
        let mut model = skl_baseline();
        let t = run_with_telemetry(
            &mut model,
            Protection::Ucode1,
            "apache2_prefork_c256",
            20_000,
        );
        assert!(
            t.flush_marks().len() > 50,
            "switch-heavy server workload must flush constantly: {}",
            t.flush_marks().len()
        );
        assert!(t.rerand_marks().is_empty(), "baseline never re-randomizes");
    }

    #[test]
    fn quiet_baseline_produces_no_marks() {
        let mut model = skl_baseline();
        let t = run_with_telemetry(&mut model, Protection::Unprotected, "519.lbm", 5_000);
        assert!(t.flush_marks().is_empty());
        assert!(t.rerand_marks().is_empty());
        assert_eq!(t.mean_rerand_gap(), None);
    }
}

//! Denial-of-service attacks on the BPU (Section VI-A6).
//!
//! The attacker does not try to read secrets, only to slow the victim
//! down: by evicting BPU data behind the victim's hot branches
//! (eviction-based DoS) or by filling the BTB with bogus targets the
//! victim might speculate to (reuse-based DoS).

use crate::harness::AttackBpu;
use stbpu_bpu::{EntityId, VirtAddr};

/// Result of a DoS campaign.
#[derive(Clone, Copy, Debug)]
pub struct DosResult {
    /// Rounds in which the victim's hot branch missed (was slowed down).
    pub victim_misses: u32,
    /// Rounds in which the victim *reused* attacker-planted data
    /// (speculating to a wrong address — reuse-based DoS).
    pub victim_poisoned: u32,
    /// Total rounds.
    pub rounds: u32,
}

/// Eviction-based DoS: each round the victim executes one hot branch; the
/// attacker then floods `flood` branches, trying to displace it.
/// On the baseline the attacker knows the victim's set and floods exactly
/// it; under STBPU it must flood blindly.
pub fn eviction_dos(bpu: &mut AttackBpu, targeted: bool, flood: usize, rounds: u32) -> DosResult {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let hot_pc = 0x0040_5000u64;
    let hot_tgt = 0x0041_0000u64;
    let mut victim_misses = 0;
    bpu.switch_to(victim);
    bpu.jump(hot_pc, hot_tgt);
    for r in 0..rounds {
        bpu.switch_to(attacker);
        for k in 0..flood {
            let pc = if targeted {
                // Baseline knowledge: same index, different tags.
                hot_pc + (((k as u64 % 15) + 1) << 14) + (k as u64 / 15) * 0x200_0000
            } else {
                // Blind flood across the address space.
                0x0100_0000 + (r as u64 * flood as u64 + k as u64) * 0x2_7961
            };
            bpu.jump(pc, 0x0900_0000);
        }
        bpu.switch_to(victim);
        let o = bpu.jump(hot_pc, hot_tgt);
        if o.predicted_target != Some(VirtAddr::new(hot_tgt)) {
            victim_misses += 1;
        }
    }
    DosResult {
        victim_misses,
        victim_poisoned: 0,
        rounds,
    }
}

/// Reuse-based DoS: the attacker pre-fills entries aliasing the victim's
/// branches with bogus targets, hoping the victim speculates down wrong
/// paths. Under STBPU a hit would decrypt to garbage *and* the aliasing
/// itself is gone.
pub fn reuse_dos(bpu: &mut AttackBpu, rounds: u32) -> DosResult {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let mut victim_poisoned = 0;
    let mut victim_misses = 0;
    for r in 0..rounds {
        let pc = 0x0040_0000 + (r as u64) * 0x88;
        let bogus = 0x0990_0000 + (r as u64) * 4;
        let legit = 0x0042_0000 + (r as u64) * 4;
        bpu.switch_to(attacker);
        bpu.jump(pc, bogus);
        bpu.switch_to(victim);
        let o = bpu.jump(pc, legit);
        match o.predicted_target {
            Some(t) if t == VirtAddr::new(legit) => {}
            Some(_) => victim_poisoned += 1,
            None => victim_misses += 1,
        }
    }
    DosResult {
        victim_misses,
        victim_poisoned,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_core::StConfig;

    #[test]
    fn baseline_targeted_eviction_dos_is_devastating() {
        let mut bpu = AttackBpu::baseline();
        let r = eviction_dos(&mut bpu, true, 16, 40);
        assert!(
            r.victim_misses as f64 / r.rounds as f64 > 0.9,
            "targeted flood must displace the victim: {}/{}",
            r.victim_misses,
            r.rounds
        );
    }

    #[test]
    fn stbpu_blind_eviction_dos_is_weak_at_equal_budget() {
        let mut bpu = AttackBpu::stbpu(StConfig::default(), 19);
        let r = eviction_dos(&mut bpu, false, 16, 40);
        let miss_rate = r.victim_misses as f64 / r.rounds as f64;
        assert!(
            miss_rate < 0.5,
            "blind flood of 16 lines into 4096 entries must mostly miss: {}/{}",
            r.victim_misses,
            r.rounds
        );
    }

    #[test]
    fn baseline_reuse_dos_poisons_victim_speculation() {
        let mut bpu = AttackBpu::baseline();
        let r = reuse_dos(&mut bpu, 64);
        assert!(
            r.victim_poisoned > 56,
            "baseline reuse DoS must redirect speculation: {}",
            r.victim_poisoned
        );
    }

    #[test]
    fn stbpu_reuse_dos_causes_no_wrong_path_speculation() {
        let mut bpu = AttackBpu::stbpu(StConfig::default(), 23);
        let r = reuse_dos(&mut bpu, 128);
        // The victim may miss (cold) but must essentially never speculate
        // to an attacker-resident address.
        assert!(
            r.victim_poisoned <= 2,
            "STBPU must not let bogus entries redirect the victim: {}",
            r.victim_poisoned
        );
    }
}

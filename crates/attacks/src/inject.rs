//! Target-injection attacks (Table I, reuse-based away effect): Spectre-v2
//! and SpectreRSB (Section VI-A1).
//!
//! Under STBPU the stored target the victim reuses decrypts to
//! `τV = φa ⊕ τA ⊕ φv`; since the attacker controls neither φ, the only
//! knob is τA, and hitting a gadget at `G` succeeds with probability
//! `1/Ω = 2⁻³²` per attempt — while every failed attempt feeds the
//! misprediction monitor.

use crate::harness::AttackBpu;
use stbpu_bpu::{BranchKind, BranchRecord, EntityId, VirtAddr};

/// Result of an injection campaign.
#[derive(Clone, Copy, Debug)]
pub struct InjectResult {
    /// Attempts in which the victim speculated to the gadget.
    pub hits: u32,
    /// Attempts in which the victim speculated *anywhere* the attacker
    /// stored (even if the decrypted address was garbage).
    pub reuses: u32,
    /// Total attempts.
    pub attempts: u32,
    /// Re-randomizations the defense performed.
    pub rerandomizations: u64,
}

/// Spectre-v2: the attacker trains the BTB entry aliasing with the
/// victim's indirect branch so the victim speculates to gadget `G`.
pub fn spectre_v2(bpu: &mut AttackBpu, attempts: u32) -> InjectResult {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let victim_branch = 0x0040_2000u64;
    let gadget = 0x0066_6000u64; // Spectre gadget in the victim's space
    let legit = 0x0041_0000u64;

    let mut hits = 0;
    let mut reuses = 0;
    for _ in 0..attempts {
        // Train: the attacker executes its aliased indirect branch with the
        // malicious target (baseline: same entry; STBPU: keyed entry).
        // Repeating the branch stuffs the BHB until it reaches its fixed
        // point, so the insertion context matches the victim's lookup
        // context — the history-mimicry step of real Spectre-v2 exploits.
        bpu.switch_to(attacker);
        for _ in 0..30 {
            bpu.exec(&BranchRecord::taken(
                victim_branch,
                BranchKind::IndirectJump,
                gadget,
            ));
        }

        // Victim executes; the *prediction* is where it transiently goes.
        bpu.switch_to(victim);
        let o = bpu.exec(&BranchRecord::taken(
            victim_branch,
            BranchKind::IndirectJump,
            legit,
        ));
        if let Some(t) = o.predicted_target {
            if t == VirtAddr::new(gadget) {
                hits += 1;
            }
            if t != VirtAddr::new(legit) {
                reuses += 1;
            }
        }
    }
    InjectResult {
        hits,
        reuses,
        attempts,
        rerandomizations: bpu.rerandomizations(),
    }
}

/// SpectreRSB: the attacker leaves a poisoned return address on the RSB
/// (calls without returning), then the victim's `ret` pops it.
pub fn spectre_rsb(bpu: &mut AttackBpu, attempts: u32) -> InjectResult {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let gadget = 0x0066_6000u64;

    let mut hits = 0;
    let mut reuses = 0;
    for i in 0..attempts {
        // The attacker calls from just before the gadget so the pushed
        // return address *is* the gadget.
        bpu.switch_to(attacker);
        let call_pc = gadget - 4;
        bpu.exec(&BranchRecord::taken(
            call_pc,
            BranchKind::DirectCall,
            0x0050_0000,
        ));

        // Victim returns; its architected target is its own caller.
        bpu.switch_to(victim);
        let legit = 0x0042_0000 + i as u64 * 4;
        let o = bpu.exec(&BranchRecord::taken(0x0043_0000, BranchKind::Return, legit));
        if let Some(t) = o.predicted_target {
            if t == VirtAddr::new(gadget) {
                hits += 1;
            }
            if t != VirtAddr::new(legit) {
                reuses += 1;
            }
        }
    }
    InjectResult {
        hits,
        reuses,
        attempts,
        rerandomizations: bpu.rerandomizations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_core::StConfig;

    #[test]
    fn baseline_spectre_v2_lands_on_gadget() {
        let mut bpu = AttackBpu::baseline();
        let r = spectre_v2(&mut bpu, 32);
        assert!(
            r.hits >= 31,
            "baseline v2 must hit the gadget: {}/{}",
            r.hits,
            r.attempts
        );
    }

    #[test]
    fn stbpu_spectre_v2_never_lands_on_gadget() {
        let mut bpu = AttackBpu::stbpu(StConfig::default(), 9);
        let r = spectre_v2(&mut bpu, 256);
        assert_eq!(r.hits, 0, "ST encryption must stall the gadget jump");
        // Even when the victim's lookup reuses a (φ-garbled) entry, the
        // speculated address is effectively random.
        assert!(r.reuses <= r.attempts);
    }

    #[test]
    fn baseline_spectre_rsb_lands_on_gadget() {
        let mut bpu = AttackBpu::baseline();
        let r = spectre_rsb(&mut bpu, 32);
        assert!(
            r.hits >= 31,
            "baseline RSB poison must work: {}/{}",
            r.hits,
            r.attempts
        );
    }

    #[test]
    fn stbpu_spectre_rsb_is_garbled() {
        let mut bpu = AttackBpu::stbpu(StConfig::default(), 11);
        let r = spectre_rsb(&mut bpu, 256);
        assert_eq!(r.hits, 0, "τV = φa ⊕ τA ⊕ φv must miss the gadget");
        // The RSB pop itself still happens — but the value is ciphertext
        // under the wrong key.
        assert!(r.reuses > 0, "victim still pops attacker-pushed entries");
    }

    #[test]
    fn failed_injections_feed_the_monitor() {
        // SpectreRSB makes the victim pop attacker ciphertext on every
        // attempt — each failed speculation is a monitored misprediction.
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 50.0,
            eviction_complexity: 1e9,
            ..StConfig::default()
        };
        let mut bpu = AttackBpu::stbpu(cfg, 13);
        let r = spectre_rsb(&mut bpu, 400);
        assert_eq!(r.hits, 0);
        assert!(
            r.rerandomizations >= 1,
            "injection attempts must trip the misprediction threshold"
        );
    }
}

//! The full Table I attack surface, executed cell by cell against the
//! baseline BPU and STBPU.
//!
//! Cells are classified by structure (BTB/PHT/RSB), event type (reuse- or
//! eviction-based) and where the adversarial effect lands (home = in the
//! attacker's observation, away = in the victim's execution).

use crate::harness::AttackBpu;
use crate::{inject, reuse};
use stbpu_bpu::{BranchKind, BranchRecord, EntityId, VirtAddr};
use stbpu_core::StConfig;

/// BPU structure a cell targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Structure {
    /// Branch target buffer.
    Btb,
    /// Pattern history table.
    Pht,
    /// Return stack buffer.
    Rsb,
}

/// Collision event type and effect location.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Vector {
    /// Reuse-based, home effect (attacker observes victim data).
    ReuseHome,
    /// Reuse-based, away effect (victim consumes attacker data).
    ReuseAway,
    /// Eviction-based, home effect.
    EvictionHome,
    /// Eviction-based, away effect.
    EvictionAway,
}

/// Result of evaluating one Table I cell against both designs.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Structure under attack.
    pub structure: Structure,
    /// Attack vector.
    pub vector: Vector,
    /// Table I row description.
    pub description: &'static str,
    /// `None` when the cell is not applicable (PHT entries are not
    /// evicted).
    pub baseline_vulnerable: Option<bool>,
    /// STBPU verdict (see `note` for channels that survive without
    /// carrying address information).
    pub stbpu_vulnerable: Option<bool>,
    /// Free-form observation.
    pub note: &'static str,
}

fn bpus(seed: u64) -> (AttackBpu, AttackBpu) {
    (
        AttackBpu::baseline(),
        AttackBpu::stbpu(StConfig::default(), seed),
    )
}

/// BTB eviction, home effect: the attacker primes a set and detects the
/// victim's insertion through its own subsequent misses.
fn btb_eviction_home(bpu: &mut AttackBpu, analytic: bool) -> bool {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let victim_pc = 0x0040_3000u64;
    bpu.switch_to(attacker);
    let primes: Vec<u64> = if analytic {
        crate::eviction::baseline_eviction_set(victim_pc, 8)
    } else {
        (0..8u64).map(|k| 0x0200_0000 + k * 0x5_1237).collect()
    };
    for (i, &pc) in primes.iter().enumerate() {
        bpu.jump(pc, 0x0900_0000 + i as u64 * 8);
    }
    bpu.switch_to(victim);
    bpu.jump(victim_pc, 0x0800_0000);
    bpu.switch_to(attacker);
    primes.iter().enumerate().any(|(i, &pc)| {
        bpu.jump(pc, 0x0900_0000 + i as u64 * 8)
            .predicted_target
            .is_none()
    })
}

/// BTB eviction, away effect: the attacker displaces the victim's entry so
/// the victim loses its prediction.
fn btb_eviction_away(bpu: &mut AttackBpu, analytic: bool) -> bool {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let victim_pc = 0x0040_4000u64;
    bpu.switch_to(victim);
    bpu.jump(victim_pc, 0x0800_0000);
    bpu.switch_to(attacker);
    let flood: Vec<u64> = if analytic {
        crate::eviction::baseline_eviction_set(victim_pc, 8)
    } else {
        (0..8u64).map(|k| 0x0300_0000 + k * 0x7_1931).collect()
    };
    for (i, &pc) in flood.iter().enumerate() {
        bpu.jump(pc, 0x0900_0000 + i as u64 * 8);
    }
    bpu.switch_to(victim);
    bpu.jump(victim_pc, 0x0800_0000).predicted_target != Some(VirtAddr::new(0x0800_0000))
}

/// PHT reuse, away effect: the attacker trains the shared counter so the
/// victim's not-taken branch is predicted taken (malicious speculation).
fn pht_reuse_away(bpu: &mut AttackBpu) -> bool {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let pc = 0x0056_6000u64;
    bpu.switch_to(attacker);
    for _ in 0..3 {
        bpu.cond(pc, true);
    }
    bpu.switch_to(victim);
    // The victim's branch is architecturally not-taken; a taken
    // prediction sends it down the speculative gadget path.
    bpu.cond(pc, false).predicted_taken == Some(true)
}

/// RSB reuse, home effect: the attacker's `ret` pops the victim's pushed
/// return address, disclosing it.
fn rsb_reuse_home(bpu: &mut AttackBpu) -> bool {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    bpu.switch_to(victim);
    let call = BranchRecord::taken(0x0040_7000, BranchKind::DirectCall, 0x0050_0000);
    bpu.exec(&call);
    bpu.switch_to(attacker);
    let o = bpu.exec(&BranchRecord::taken(
        0x0060_0000,
        BranchKind::Return,
        0x0061_0000,
    ));
    o.predicted_target == Some(call.fallthrough())
}

/// RSB eviction, home effect: the attacker fills the RSB and detects the
/// victim's call through its own deep-return misprediction. Note this is a
/// pure *occupancy* channel.
fn rsb_eviction_home(bpu: &mut AttackBpu) -> bool {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    bpu.switch_to(attacker);
    let mut expected = Vec::new();
    for i in 0..16u64 {
        let rec = BranchRecord::taken(0x0070_0000 + i * 0x100, BranchKind::DirectCall, 0x0071_0000);
        bpu.exec(&rec);
        expected.push(rec.fallthrough());
    }
    bpu.switch_to(victim);
    bpu.exec(&BranchRecord::taken(
        0x0040_8000,
        BranchKind::DirectCall,
        0x0050_0000,
    ));
    bpu.switch_to(attacker);
    // Unwind: the deepest return must now pop the victim's (foreign) entry.
    let mut signalled = false;
    for exp in expected.iter().rev() {
        let o = bpu.exec(&BranchRecord::taken(
            0x0071_0000,
            BranchKind::Return,
            exp.raw(),
        ));
        if o.predicted_target != Some(*exp) {
            signalled = true;
        }
    }
    signalled
}

/// RSB eviction, away effect: the attacker overflows the RSB so the
/// victim's return underflows; "vulnerable" means the attacker can steer
/// where the victim then speculates (via the poisoned indirect fallback).
fn rsb_eviction_away(bpu: &mut AttackBpu) -> bool {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let gadget = 0x0066_6000u64;
    // Victim calls once (its return address is on the RSB)...
    bpu.switch_to(victim);
    bpu.exec(&BranchRecord::taken(
        0x0040_9000,
        BranchKind::DirectCall,
        0x0050_0000,
    ));
    // ... the attacker drains the stack (pops the victim's entry) and
    // poisons the indirect-predictor fallback for the victim's return
    // site (history-stuffed, see `spectre_v2`).
    bpu.switch_to(attacker);
    for _ in 0..17u64 {
        bpu.exec(&BranchRecord::taken(
            0x0071_0000,
            BranchKind::Return,
            0x0072_0000,
        ));
    }
    for _ in 0..30 {
        bpu.exec(&BranchRecord::taken(
            0x0050_0040,
            BranchKind::IndirectJump,
            gadget,
        ));
    }
    // Victim returns: RSB underflow (its entry was drained), fallback to
    // the (poisoned) indirect predictor.
    bpu.switch_to(victim);
    let o = bpu.exec(&BranchRecord::taken(
        0x0050_0040,
        BranchKind::Return,
        0x0040_9004,
    ));
    o.predicted_target == Some(VirtAddr::new(gadget))
}

/// Evaluates the full Table I surface. Each cell runs a concrete scenario
/// against a fresh baseline and a fresh STBPU instance.
pub fn evaluate_surface(seed: u64) -> Vec<CellReport> {
    let mut out = Vec::new();

    // --- BTB reuse, home ---
    let (mut b, mut s) = bpus(seed);
    out.push(CellReport {
        structure: Structure::Btb,
        vector: Vector::ReuseHome,
        description: "V: jmp s→d; A: jmp s→d'; A sees misprediction (target disclosure)",
        baseline_vulnerable: Some(reuse::btb_probe(&mut b, 32).rate() > 0.5),
        stbpu_vulnerable: Some(reuse::btb_probe(&mut s, 32).rate() > 0.5),
        note: "Jump-over-ASLR class [19]",
    });

    // --- BTB reuse, away (Spectre v2) ---
    let (mut b, mut s) = bpus(seed + 1);
    out.push(CellReport {
        structure: Structure::Btb,
        vector: Vector::ReuseAway,
        description: "A: jmp s→d; V: jmp s→d'; V speculatively executes d",
        baseline_vulnerable: Some(inject::spectre_v2(&mut b, 16).hits > 0),
        stbpu_vulnerable: Some(inject::spectre_v2(&mut s, 64).hits > 0),
        note: "Spectre v2 [32]; φ-encryption stalls gadget jumps",
    });

    // --- BTB eviction, home ---
    let (mut b, mut s) = bpus(seed + 2);
    out.push(CellReport {
        structure: Structure::Btb,
        vector: Vector::EvictionHome,
        description: "A primes set; V: jmp s'→d' evicts; A sees s mispredicted",
        baseline_vulnerable: Some(btb_eviction_home(&mut b, true)),
        stbpu_vulnerable: Some(btb_eviction_home(&mut s, false)),
        note: "set construction needs GEM under STBPU; monitor fires first",
    });

    // --- BTB eviction, away ---
    let (mut b, mut s) = bpus(seed + 3);
    out.push(CellReport {
        structure: Structure::Btb,
        vector: Vector::EvictionAway,
        description: "V: jmp s→d; A evicts; V falls back to static prediction",
        baseline_vulnerable: Some(btb_eviction_away(&mut b, true)),
        stbpu_vulnerable: Some(btb_eviction_away(&mut s, false)),
        note: "analytic sets on baseline; blind flood whiffs under STBPU",
    });

    // --- PHT reuse, home (BranchScope) ---
    let (mut b, mut s) = bpus(seed + 4);
    let secret: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
    out.push(CellReport {
        structure: Structure::Pht,
        vector: Vector::ReuseHome,
        description: "V: jt s; A: jnt s reuses counter; A sees misprediction",
        baseline_vulnerable: Some(reuse::branchscope(&mut b, &secret).accuracy() > 0.8),
        stbpu_vulnerable: Some(reuse::branchscope(&mut s, &secret).accuracy() > 0.8),
        note: "BranchScope [21]",
    });

    // --- PHT reuse, away ---
    let (mut b, mut s) = bpus(seed + 5);
    out.push(CellReport {
        structure: Structure::Pht,
        vector: Vector::ReuseAway,
        description: "A: jt s trains counter; V: jnt s predicted taken; V speculates s+1",
        baseline_vulnerable: Some(pht_reuse_away(&mut b)),
        stbpu_vulnerable: Some(pht_reuse_away(&mut s)),
        note: "Spectre-v1-style direction steering across entities",
    });

    // --- PHT eviction: entries are not evicted ---
    for vector in [Vector::EvictionHome, Vector::EvictionAway] {
        out.push(CellReport {
            structure: Structure::Pht,
            vector,
            description: "PHT entries are not evicted",
            baseline_vulnerable: None,
            stbpu_vulnerable: None,
            note: "not applicable (tag-less saturating counters)",
        });
    }

    // --- RSB reuse, home ---
    let (mut b, mut s) = bpus(seed + 6);
    out.push(CellReport {
        structure: Structure::Rsb,
        vector: Vector::ReuseHome,
        description: "V: call s→d; A: ret reuses (s+1); A sees V's return address",
        baseline_vulnerable: Some(rsb_reuse_home(&mut b)),
        stbpu_vulnerable: Some(rsb_reuse_home(&mut s)),
        note: "φ-encryption garbles foreign RSB payloads",
    });

    // --- RSB reuse, away (SpectreRSB) ---
    let (mut b, mut s) = bpus(seed + 7);
    out.push(CellReport {
        structure: Structure::Rsb,
        vector: Vector::ReuseAway,
        description: "A: call s→d; V: ret speculates to (s+1)",
        baseline_vulnerable: Some(inject::spectre_rsb(&mut b, 16).hits > 0),
        stbpu_vulnerable: Some(inject::spectre_rsb(&mut s, 64).hits > 0),
        note: "SpectreRSB [34]",
    });

    // --- RSB eviction, home ---
    let (mut b, mut s) = bpus(seed + 8);
    out.push(CellReport {
        structure: Structure::Rsb,
        vector: Vector::EvictionHome,
        description: "A fills RSB; V: call evicts (s+1); A sees misprediction",
        baseline_vulnerable: Some(rsb_eviction_home(&mut b)),
        stbpu_vulnerable: Some(rsb_eviction_home(&mut s)),
        note: "pure occupancy channel: survives STBPU but leaks only call \
               counts, never addresses (payloads stay encrypted)",
    });

    // --- RSB eviction, away ---
    let (mut b, mut s) = bpus(seed + 9);
    out.push(CellReport {
        structure: Structure::Rsb,
        vector: Vector::EvictionAway,
        description: "A overflows RSB; V: ret underflows to static/indirect prediction",
        baseline_vulnerable: Some(rsb_eviction_away(&mut b)),
        stbpu_vulnerable: Some(rsb_eviction_away(&mut s)),
        note: "baseline: poisoned indirect fallback steers V; STBPU: fallback keyed",
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_has_twelve_cells() {
        let cells = evaluate_surface(42);
        assert_eq!(cells.len(), 12);
        let na = cells
            .iter()
            .filter(|c| c.baseline_vulnerable.is_none())
            .count();
        assert_eq!(na, 2, "exactly the two PHT eviction cells are N/A");
    }

    #[test]
    fn baseline_is_vulnerable_everywhere_applicable() {
        for c in evaluate_surface(42) {
            if let Some(v) = c.baseline_vulnerable {
                assert!(
                    v,
                    "baseline must be vulnerable: {:?}/{:?}",
                    c.structure, c.vector
                );
            }
        }
    }

    #[test]
    fn stbpu_blocks_all_address_revealing_cells() {
        for c in evaluate_surface(42) {
            // The RSB occupancy channel is the documented exception: it
            // signals *that* the victim called, but no addresses.
            if c.structure == Structure::Rsb && c.vector == Vector::EvictionHome {
                continue;
            }
            if let Some(v) = c.stbpu_vulnerable {
                assert!(
                    !v,
                    "STBPU must block {:?}/{:?} ({})",
                    c.structure, c.vector, c.description
                );
            }
        }
    }

    #[test]
    fn rsb_occupancy_channel_documented() {
        let cells = evaluate_surface(42);
        let c = cells
            .iter()
            .find(|c| c.structure == Structure::Rsb && c.vector == Vector::EvictionHome)
            .unwrap();
        assert_eq!(c.stbpu_vulnerable, Some(true));
        assert!(c.note.contains("occupancy"));
    }
}

//! Same-address-space attacks — transient trojans \[78\] (Section VI-A3).
//!
//! Both colliding branches live in the *attacker's own* address space, so
//! φ-encryption provides no protection (the same key encrypts and
//! decrypts). What stops the attack under STBPU is the keyed remapping
//! over the *full 48-bit* address: the baseline's 30-bit truncation is
//! what made in-space collisions constructible.

use crate::harness::AttackBpu;
use stbpu_bpu::{EntityId, VirtAddr};

/// Result of a same-space collision scan.
#[derive(Clone, Copy, Debug)]
pub struct TrojanResult {
    /// Pairs tried.
    pub pairs: u32,
    /// Pairs where the aliased branch reused the trained target — i.e. a
    /// working trojan trigger.
    pub collisions: u32,
}

impl TrojanResult {
    /// Collision rate.
    pub fn rate(&self) -> f64 {
        self.collisions as f64 / self.pairs.max(1) as f64
    }
}

/// Scans pairs `(pc, pc + k·2³⁰)`: on the baseline every pair collides
/// (bits ≥ 30 are ignored by the mapping), arming a transient trojan; under
/// STBPU the full address is keyed into R1, so aliasing disappears.
pub fn trojan_scan(bpu: &mut AttackBpu, pairs: u32) -> TrojanResult {
    bpu.switch_to(EntityId::user(1)); // everything in one address space
    let mut collisions = 0;
    for i in 0..pairs {
        let pc = 0x0020_0000 + (i as u64) * 0x1_0400;
        // Aliases differ in bits 30..32 — ignored by the baseline mapping
        // but still inside the branch's 4 GiB window, so the function-⑤
        // target re-extension also carries over (the ASPLOS'20 setting).
        let alias = pc + (((i as u64 % 3) + 1) << 30);
        let gadget = 0x0077_0000 + (i as u64) * 0x10;
        // Train the "trojan activation" branch...
        bpu.jump(pc, gadget);
        // ... and trigger via the aliased branch elsewhere in the binary.
        let o = bpu.jump(alias, 0x0088_0000);
        if o.predicted_target == Some(VirtAddr::new(gadget)) {
            collisions += 1;
        }
    }
    TrojanResult { pairs, collisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_core::StConfig;

    #[test]
    fn baseline_truncation_arms_trojans() {
        let mut bpu = AttackBpu::baseline();
        let r = trojan_scan(&mut bpu, 64);
        assert!(
            r.rate() > 0.95,
            "30-bit truncation must alias in-space branches: {}",
            r.rate()
        );
    }

    #[test]
    fn stbpu_full_address_remapping_disarms_trojans() {
        let mut bpu = AttackBpu::stbpu(StConfig::default(), 17);
        let r = trojan_scan(&mut bpu, 256);
        assert!(
            r.rate() < 0.02,
            "48-bit keyed remapping must break in-space aliasing: {}",
            r.rate()
        );
    }
}

//! Reuse-based attacks (Table I, left half): the attacker and victim's
//! branches map to the same entry and one observes data the other placed.

use crate::harness::AttackBpu;
use stbpu_bpu::{EntityId, VirtAddr};

/// Result of the BTB reuse probe (home effect): the attacker learns the
/// victim's branch target — the "Jump over ASLR" primitive \[19\].
#[derive(Clone, Copy, Debug)]
pub struct ProbeResult {
    /// Trials in which the attacker's probe observed the victim's target.
    pub leaked: u32,
    /// Total trials.
    pub trials: u32,
}

impl ProbeResult {
    /// Leak rate over the trials.
    pub fn rate(&self) -> f64 {
        self.leaked as f64 / self.trials.max(1) as f64
    }
}

/// BTB reuse, home effect: victim `V` executes `jmp s → d`; attacker `A`
/// executes a branch at the *same* (truncated) source address and watches
/// whether the BPU hands it the victim's target.
pub fn btb_probe(bpu: &mut AttackBpu, trials: u32) -> ProbeResult {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    let mut leaked = 0;
    for i in 0..trials {
        let pc = 0x0040_1000 + (i as u64) * 0x80;
        let d = 0x0800_0000 + (i as u64) * 0x40;
        bpu.switch_to(victim);
        bpu.jump(pc, d);
        bpu.switch_to(attacker);
        // The attacker's own architected target is elsewhere; the *predicted*
        // target is what leaks.
        let o = bpu.jump(pc, 0x0900_0000);
        if o.predicted_target == Some(VirtAddr::new(d)) {
            leaked += 1;
        }
    }
    ProbeResult { leaked, trials }
}

/// Result of a BranchScope-style PHT attack.
#[derive(Clone, Debug)]
pub struct BranchScopeResult {
    /// Secret bits the victim processed.
    pub secret: Vec<bool>,
    /// Bits the attacker recovered.
    pub recovered: Vec<bool>,
    /// Re-randomizations the defense performed during the attack.
    pub rerandomizations: u64,
}

impl BranchScopeResult {
    /// Fraction of correctly recovered bits (0.5 = no information).
    pub fn accuracy(&self) -> f64 {
        let ok = self
            .secret
            .iter()
            .zip(&self.recovered)
            .filter(|(a, b)| a == b)
            .count();
        ok as f64 / self.secret.len().max(1) as f64
    }
}

/// PHT reuse, home effect (BranchScope \[21\]): the attacker primes the
/// shared two-bit counter into a known weak state, lets the victim execute
/// one secret-dependent branch, then probes the counter with its own
/// colliding branch and decodes the secret from its own (mis)prediction.
pub fn branchscope(bpu: &mut AttackBpu, secret: &[bool]) -> BranchScopeResult {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    // Same virtual address in both address spaces — collides in the
    // baseline PHT because function ③ is keyless and truncated.
    let pc = 0x0055_5000u64;
    let mut recovered = Vec::with_capacity(secret.len());

    for &bit in secret {
        bpu.switch_to(attacker);
        // Prime: drive to strongly-not-taken, then one taken => counter 1
        // (weakly not-taken).
        for _ in 0..3 {
            bpu.cond(pc, false);
        }
        bpu.cond(pc, true);

        // Victim executes the secret-dependent branch once.
        bpu.switch_to(victim);
        bpu.cond(pc, bit);

        // Probe: execute not-taken; a taken *prediction* (misprediction
        // observable through timing) means the counter crossed to ≥ 2,
        // i.e. the victim's branch was taken.
        bpu.switch_to(attacker);
        let o = bpu.cond(pc, false);
        recovered.push(o.predicted_taken == Some(true));
    }
    BranchScopeResult {
        secret: secret.to_vec(),
        recovered,
        rerandomizations: bpu.rerandomizations(),
    }
}

/// Outcome of growing the collision-free probe set `SB` of Section VI-A2.
#[derive(Clone, Copy, Debug)]
pub struct SbResult {
    /// Members accumulated before stopping.
    pub set_size: usize,
    /// Mispredictions the attacker triggered.
    pub mispredictions: u64,
    /// Evictions the attacker triggered.
    pub evictions: u64,
    /// Re-randomizations the defense performed — nonzero means the stored
    /// knowledge was invalidated before the attack completed.
    pub rerandomizations: u64,
}

/// Executes the §VI-A2 set-building procedure against an STBPU (or
/// baseline) instance: keep adding fresh branches that do not collide with
/// any existing member, counting the monitorable events expended. Stops at
/// `target_size` members, after `max_branches` probes, or as soon as a
/// re-randomization is detected (which invalidates the whole set).
pub fn grow_probe_set(bpu: &mut AttackBpu, target_size: usize, max_branches: u64) -> SbResult {
    let attacker = EntityId::user(1);
    bpu.switch_to(attacker);
    let mut misp = 0u64;
    let mut evictions = 0u64;
    let mut size = 0usize;
    let mut tested = 0u64;
    let gen0 = bpu.rerandomizations();
    let mut pc = 0x0010_0000u64;
    while size < target_size && tested < max_branches {
        pc += 0x44; // fresh candidate branch address
        let o = bpu.jump(pc, 0x0700_0000 + tested * 8);
        tested += 1;
        if o.mispredicted {
            misp += 1;
        }
        if o.evicted {
            evictions += 1;
        }
        if o.predicted_target.is_none() {
            // Cold miss: no collision with current members — admit it.
            size += 1;
        }
        if bpu.rerandomizations() != gen0 {
            break;
        }
    }
    SbResult {
        set_size: size,
        mispredictions: misp,
        evictions,
        rerandomizations: bpu.rerandomizations() - gen0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_core::StConfig;

    #[test]
    fn baseline_btb_probe_leaks_targets() {
        let mut bpu = AttackBpu::baseline();
        let r = btb_probe(&mut bpu, 64);
        assert!(r.rate() > 0.95, "baseline must leak targets: {}", r.rate());
    }

    #[test]
    fn stbpu_btb_probe_leaks_nothing() {
        let mut bpu = AttackBpu::stbpu(StConfig::default(), 3);
        let r = btb_probe(&mut bpu, 64);
        assert_eq!(r.leaked, 0, "STBPU must not leak victim targets");
    }

    #[test]
    fn baseline_branchscope_recovers_secret() {
        let mut bpu = AttackBpu::baseline();
        let secret: Vec<bool> = (0..64).map(|i| (i * 7) % 3 == 0).collect();
        let r = branchscope(&mut bpu, &secret);
        assert!(
            r.accuracy() > 0.95,
            "baseline BranchScope accuracy {}",
            r.accuracy()
        );
    }

    #[test]
    fn stbpu_branchscope_is_chance() {
        let mut bpu = AttackBpu::stbpu(StConfig::default(), 5);
        let secret: Vec<bool> = (0..128).map(|i| (i * 11) % 5 < 2).collect();
        let r = branchscope(&mut bpu, &secret);
        assert!(
            r.accuracy() < 0.72,
            "STBPU BranchScope must be ~chance, got {}",
            r.accuracy()
        );
    }

    #[test]
    fn probe_set_growth_is_stopped_by_rerandomization() {
        // Scaled thresholds: the defense should fire long before the
        // attacker accumulates a large collision-free set.
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 500.0,
            eviction_complexity: 500.0,
            ..StConfig::default()
        };
        let mut bpu = AttackBpu::stbpu(cfg, 7);
        let r = grow_probe_set(&mut bpu, 1 << 20, 1 << 20);
        assert!(r.rerandomizations >= 1, "defense must fire");
        assert!(
            r.set_size < 1000,
            "set growth must be bounded by the threshold, got {}",
            r.set_size
        );
    }

    #[test]
    fn probe_set_grows_freely_on_baseline() {
        let mut bpu = AttackBpu::baseline();
        let r = grow_probe_set(&mut bpu, 512, 4096);
        assert_eq!(r.rerandomizations, 0);
        assert!(
            r.set_size >= 512,
            "baseline imposes no limit: {}",
            r.set_size
        );
    }
}

//! Eviction-based attacks (Table I, right half) and the GEM eviction-set
//! construction algorithm (Section VI-A4).
//!
//! On the baseline BPU the attacker computes colliding addresses directly;
//! under STBPU the mapping is keyed, so the attacker must discover eviction
//! sets behaviourally. The paper assumes the attacker uses GEM (group
//! elimination, Qureshi ISCA'19), the fastest known algorithm for
//! randomized structures without partitions.

use crate::harness::AttackBpu;
use stbpu_bpu::{EntityId, VirtAddr};

/// Group-elimination minimization: reduces `candidates` to a minimal
/// eviction set of at most `ways` elements, using `oracle(set) -> bool`
/// ("does this set evict the victim?"). Returns `None` if the initial
/// candidate set does not evict.
///
/// This is the textbook GEM loop: split into `ways + 1` groups and drop
/// any group whose removal keeps the set evicting.
pub fn gem<F>(mut candidates: Vec<u64>, ways: usize, mut oracle: F) -> Option<Vec<u64>>
where
    F: FnMut(&[u64]) -> bool,
{
    if !oracle(&candidates) {
        return None;
    }
    while candidates.len() > ways {
        let groups = ways + 1;
        let len = candidates.len();
        let mut reduced = false;
        for g in 0..groups {
            // Balanced split into exactly `ways + 1` groups: with at most
            // `ways` essential elements, at least one group is removable.
            let lo = g * len / groups;
            let hi = (g + 1) * len / groups;
            if lo >= hi {
                continue;
            }
            let trial: Vec<u64> = candidates[..lo]
                .iter()
                .chain(&candidates[hi..])
                .copied()
                .collect();
            if oracle(&trial) {
                candidates = trial;
                reduced = true;
                break;
            }
        }
        if !reduced {
            // No single group can be removed — candidate set is already
            // near-minimal but larger than `ways` (oracle noise); give up.
            return Some(candidates);
        }
    }
    Some(candidates)
}

/// Result of an eviction-set campaign against one victim branch.
#[derive(Clone, Debug)]
pub struct EvictionCampaign {
    /// Minimal eviction set found (attacker branch addresses).
    pub eviction_set: Option<Vec<u64>>,
    /// Total BTB evictions triggered while searching.
    pub evictions_triggered: u64,
    /// Re-randomizations the defense performed.
    pub rerandomizations: u64,
    /// Whether the found set still works at the end of the campaign.
    pub still_valid: bool,
}

/// Eviction oracle for one victim branch: plant the victim entry, execute
/// the attacker's candidate set, then re-execute the victim and observe
/// whether its entry was displaced (victim sees a BTB miss).
fn evicts(bpu: &mut AttackBpu, victim_pc: u64, set: &[u64]) -> bool {
    let attacker = EntityId::user(1);
    let victim = EntityId::user(2);
    bpu.switch_to(victim);
    bpu.jump(victim_pc, 0x0800_0000);
    bpu.switch_to(attacker);
    for (i, &pc) in set.iter().enumerate() {
        bpu.jump(pc, 0x0900_0000 + i as u64 * 8);
    }
    bpu.switch_to(victim);
    let o = bpu.jump(victim_pc, 0x0800_0000);
    o.predicted_target != Some(VirtAddr::new(0x0800_0000))
}

/// Runs a full eviction-set construction campaign: candidate pool of
/// `pool_size` random-ish branches, GEM minimization, and a final validity
/// re-check (under STBPU a re-randomization invalidates the set).
pub fn eviction_campaign(
    bpu: &mut AttackBpu,
    victim_pc: u64,
    pool_size: usize,
) -> EvictionCampaign {
    let ways = 8;
    let ev0 = bpu.btb_evictions();
    let candidates: Vec<u64> = (0..pool_size)
        .map(|i| 0x0100_0000 + (i as u64) * 0x3_9e41) // spread over the map
        .collect();
    let set = gem(candidates, ways, |s| evicts(bpu, victim_pc, s));
    let still_valid = match &set {
        Some(s) => evicts(bpu, victim_pc, s),
        None => false,
    };
    EvictionCampaign {
        eviction_set: set,
        evictions_triggered: bpu.btb_evictions() - ev0,
        rerandomizations: bpu.rerandomizations(),
        still_valid,
    }
}

/// Baseline shortcut: on the key-less mapper the attacker computes `ways`
/// same-index branches analytically (index = bits 5..14, tag from higher
/// bits), no search needed.
pub fn baseline_eviction_set(victim_pc: u64, ways: usize) -> Vec<u64> {
    (1..=ways as u64).map(|k| victim_pc + (k << 14)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_core::StConfig;

    #[test]
    fn gem_minimizes_to_ways() {
        // Synthetic oracle: the "victim set" is {addresses ≡ 3 mod 7};
        // a set evicts iff it holds ≥ 4 such addresses.
        let pool: Vec<u64> = (0..200).collect();
        let set = gem(pool, 4, |s| s.iter().filter(|&&a| a % 7 == 3).count() >= 4).unwrap();
        assert_eq!(set.len(), 4);
        assert!(set.iter().all(|&a| a % 7 == 3));
    }

    #[test]
    fn gem_fails_cleanly_when_pool_insufficient() {
        let pool: Vec<u64> = (0..10).collect();
        assert!(gem(pool, 4, |s| s.len() >= 100).is_none());
    }

    #[test]
    fn baseline_analytic_eviction_set_works() {
        let mut bpu = AttackBpu::baseline();
        let victim_pc = 0x0040_3000u64;
        let set = baseline_eviction_set(victim_pc, 8);
        assert!(
            evicts(&mut bpu, victim_pc, &set),
            "8 same-index branches must evict"
        );
    }

    #[test]
    fn baseline_gem_finds_a_set_from_a_blind_pool() {
        let mut bpu = AttackBpu::baseline();
        // Pool with stride 1<<14 hits the victim's set repeatedly.
        let victim_pc = 0x0040_3000u64;
        let pool: Vec<u64> = (1..=48u64).map(|k| victim_pc + (k << 14)).collect();
        let c = gem(pool, 8, |s| evicts(&mut bpu, victim_pc, s));
        assert!(c.is_some());
        assert!(c.unwrap().len() <= 9);
    }

    #[test]
    fn stbpu_campaign_trips_rerandomization_and_invalidates_sets() {
        // Eviction threshold scaled down so the test is fast; the structure
        // of the result is what Section VI predicts: the defense fires
        // mid-search and whatever set was found stops working.
        let cfg = StConfig {
            r: 1.0,
            misp_complexity: 1e9,
            eviction_complexity: 400.0,
            ..StConfig::default()
        };
        let mut bpu = AttackBpu::stbpu(cfg, 2);
        let report = eviction_campaign(&mut bpu, 0x0040_3000, 4096);
        assert!(
            report.rerandomizations >= 1,
            "eviction monitor must fire during GEM (triggered {} evictions)",
            report.evictions_triggered
        );
        assert!(
            !report.still_valid,
            "a re-randomization must invalidate the discovered set"
        );
    }
}

//! The closed-form security analysis of Section VI.
//!
//! Parameters follow Table III: `I` sets, `W` ways, `T` tag entropy, `O`
//! offset entropy, `Ω` target entropy. All complexities are the number of
//! monitorable events (mispredictions or evictions) an attacker must
//! trigger for a 50 % success probability.

/// Structure geometry for the analysis (Table III parameters).
#[derive(Clone, Copy, Debug)]
pub struct BpuGeometry {
    /// BTB sets (I).
    pub btb_sets: u64,
    /// BTB ways (W).
    pub btb_ways: u64,
    /// BTB tag entropy |T| = 2^tag_bits.
    pub btb_tags: u64,
    /// BTB offset entropy |O| = 2^offset_bits.
    pub btb_offsets: u64,
    /// Stored-target entropy |Ω| = 2^32 (32 stored bits).
    pub target_space: u64,
    /// PHT sets.
    pub pht_sets: u64,
    /// RSB entries.
    pub rsb_entries: u64,
}

impl BpuGeometry {
    /// The Skylake-like baseline: BTB 512×8 with 8-bit tags and 5-bit
    /// offsets, 16k PHT, 16-entry RSB (Section VI-5).
    pub fn skylake() -> Self {
        BpuGeometry {
            btb_sets: 512,
            btb_ways: 8,
            btb_tags: 1 << 8,
            btb_offsets: 1 << 5,
            target_space: 1 << 32,
            pht_sets: 1 << 14,
            rsb_entries: 16,
        }
    }
}

/// Cost of a reuse-based attack per Equation (2): mispredictions `M` and
/// evictions `E` incurred while growing the collision-free probe set `SB`
/// to `n` branches over a structure with `i` sets and `to` tag·offset
/// entropy.
pub fn eq2_reuse_cost(i: f64, to: f64, n: f64) -> (f64, f64) {
    use std::f64::consts::PI;
    let pairs = n * (n + 1.0) / 2.0;
    let m = pairs / ((PI / 2.0 * i).sqrt() * (PI / 2.0 * to).sqrt());
    let e = (i * to) / 2.0 - i * 8.0;
    (m, e.max(0.0))
}

/// Equation (3): probability of randomly guessing `w` branches that share
/// one set among `i` sets.
pub fn eq3_naive_eviction_set(i: f64, w: f64) -> f64 {
    1.0 / i.powf(w - 1.0)
}

/// Equation (4): evictions generated while building eviction sets with GEM
/// for attack success probability `p`.
pub fn eq4_gem_evictions(i: f64, w: f64, p: f64) -> f64 {
    let e = std::f64::consts::E;
    p * i * (p * i * w + (w + 1.0) * (1.0 - 1.0 / e) * 3.0)
}

/// The §VI-5 complexity table for one geometry.
#[derive(Clone, Copy, Debug)]
pub struct ComplexityTable {
    /// BTB reuse-based side channel: mispredictions (paper: ≈ 6.9×10⁸).
    pub btb_reuse_misp: f64,
    /// BTB reuse-based side channel: evictions (paper: ≈ 2²¹).
    pub btb_reuse_ev: f64,
    /// PHT reuse (BranchScope-class): mispredictions (paper: ≈ 8.38×10⁵).
    pub pht_reuse_misp: f64,
    /// BTB eviction-based side channel: evictions (paper: ≈ 5.3×10⁵).
    pub btb_eviction_ev: f64,
    /// Spectre-v2 / SpectreRSB target injection: mispredictions
    /// (paper: ≈ 2³¹).
    pub injection_misp: f64,
}

/// Computes the §VI-5 table.
///
/// Two conventions from the paper are reproduced verbatim:
/// * BTB reuse uses `n = I·T·O / 2` with both collision factors;
/// * PHT reuse uses `n = I` with the index factor only (the PHT has no
///   tags or offsets, so the tag·offset term degenerates).
pub fn complexity_table(g: &BpuGeometry) -> ComplexityTable {
    use std::f64::consts::PI;
    let i = g.btb_sets as f64;
    let to = (g.btb_tags * g.btb_offsets) as f64;
    let n_btb = i * to / 2.0;
    let (btb_m, btb_e) = eq2_reuse_cost(i, to, n_btb);

    let pht_n = g.pht_sets as f64;
    let pht_m = pht_n * (pht_n + 1.0) / 2.0 / (PI / 2.0 * pht_n).sqrt();

    ComplexityTable {
        btb_reuse_misp: btb_m,
        btb_reuse_ev: btb_e,
        pht_reuse_misp: pht_m,
        btb_eviction_ev: eq4_gem_evictions(i, g.btb_ways as f64, 0.5),
        injection_misp: g.target_space as f64 / 2.0,
    }
}

/// Re-randomization thresholds derived from the table: the lowest
/// misprediction- and eviction-based complexities scaled by `r`
/// (Section VII-A).
pub fn thresholds(g: &BpuGeometry, r: f64) -> (u64, u64) {
    let t = complexity_table(g);
    let min_misp = t.pht_reuse_misp.min(t.btb_reuse_misp).min(t.injection_misp);
    let min_ev = t.btb_eviction_ev.min(t.btb_reuse_ev);
    (
        ((r * min_misp).round() as u64).max(1),
        ((r * min_ev).round() as u64).max(1),
    )
}

/// Probability that one attacker branch collides with a static victim
/// branch: `P(A⇒V) = (1/I)·(1/(T·O))` (Section VI-A2).
pub fn collision_probability(g: &BpuGeometry) -> f64 {
    1.0 / (g.btb_sets as f64) / ((g.btb_tags * g.btb_offsets) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_reuse_matches_paper() {
        let t = complexity_table(&BpuGeometry::skylake());
        assert!(
            (t.btb_reuse_misp / 6.9e8 - 1.0).abs() < 0.03,
            "BTB reuse MISP {} vs paper 6.9e8",
            t.btb_reuse_misp
        );
        assert!(
            (t.btb_reuse_ev / 2f64.powi(21) - 1.0).abs() < 0.01,
            "BTB reuse EV {} vs paper 2^21",
            t.btb_reuse_ev
        );
    }

    #[test]
    fn pht_reuse_matches_paper() {
        let t = complexity_table(&BpuGeometry::skylake());
        assert!(
            (t.pht_reuse_misp / 8.38e5 - 1.0).abs() < 0.01,
            "PHT reuse MISP {} vs paper 8.38e5",
            t.pht_reuse_misp
        );
    }

    #[test]
    fn gem_eviction_matches_paper() {
        let t = complexity_table(&BpuGeometry::skylake());
        assert!(
            (t.btb_eviction_ev / 5.3e5 - 1.0).abs() < 0.01,
            "eviction EV {} vs paper 5.3e5",
            t.btb_eviction_ev
        );
    }

    #[test]
    fn injection_is_2_pow_31() {
        let t = complexity_table(&BpuGeometry::skylake());
        assert_eq!(t.injection_misp, 2f64.powi(31));
    }

    #[test]
    fn thresholds_match_section_7a() {
        let g = BpuGeometry::skylake();
        let (m01, e01) = thresholds(&g, 0.1);
        // Paper: 8.3×10⁴ and 5.3×10⁴ at r = 0.1.
        assert!((m01 as f64 / 8.38e4 - 1.0).abs() < 0.02, "misp {m01}");
        assert!((e01 as f64 / 5.3e4 - 1.0).abs() < 0.02, "ev {e01}");
        let (m005, e005) = thresholds(&g, 0.05);
        assert!((m005 as f64 / 4.15e4 - 1.0).abs() < 0.02, "misp {m005}");
        assert!((e005 as f64 / 2.65e4 - 1.0).abs() < 0.02, "ev {e005}");
    }

    #[test]
    fn eq3_is_astronomically_small() {
        let p = eq3_naive_eviction_set(512.0, 8.0);
        assert!(
            p < 1e-18,
            "naive eviction-set guessing must be hopeless: {p}"
        );
    }

    #[test]
    fn collision_probability_tiny() {
        let p = collision_probability(&BpuGeometry::skylake());
        assert!((p - 1.0 / (512.0 * 8192.0)).abs() < 1e-15);
    }

    #[test]
    fn eq2_monotone_in_n() {
        let (m1, _) = eq2_reuse_cost(512.0, 8192.0, 1e5);
        let (m2, _) = eq2_reuse_cost(512.0, 8192.0, 2e5);
        assert!(m2 > m1);
    }
}

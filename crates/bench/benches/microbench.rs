//! Criterion microbenchmarks: remapping-circuit evaluation cost, mapper
//! overhead, full-model throughput, trace generation and attack primitives.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stbpu_bpu::{BaselineMapper, Bpu, EntityId, Mapper};
use stbpu_core::{st_skl, st_tage64, StConfig, StMapper};
use stbpu_predictors::{skl_baseline, tage64_baseline};
use stbpu_remap::{analysis, RemapSet};
use stbpu_trace::{profiles, TraceGenerator};

fn bench_remap_circuits(c: &mut Criterion) {
    let set = RemapSet::standard();
    let mut g = c.benchmark_group("remap_eval");
    g.bench_function("r1", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(set.r1(0xdead_beef, pc & ((1 << 48) - 1)))
        })
    });
    g.bench_function("rt", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(set.rt(0xdead_beef, pc & ((1 << 48) - 1), pc as u16))
        })
    });
    g.bench_function("reference_mulxor_hash", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(analysis::reference_hash(0xdead_beef, pc, 22))
        })
    });
    g.finish();
}

fn bench_mappers(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapper_btb1");
    let base = BaselineMapper::new();
    g.bench_function("baseline", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(base.btb1(0, pc))
        })
    });
    let mut st = StMapper::new(StConfig::default(), 1);
    st.set_entity(0, EntityId::user(1));
    g.bench_function("stbpu", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(st.btb1(0, pc))
        })
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let p = profiles::se_profile(profiles::by_name("525.x264").expect("profile"));
    let trace = TraceGenerator::new(&p, 7).generate(2_000);
    let recs: Vec<_> = trace.branches().map(|(_, r)| *r).collect();

    let mut g = c.benchmark_group("model_process_2k_branches");
    g.sample_size(20);
    for name in ["SKLCond", "ST_SKLCond", "TAGE64", "ST_TAGE64"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter_batched(
                || -> Box<dyn Bpu> {
                    match name {
                        "SKLCond" => Box::new(skl_baseline()),
                        "ST_SKLCond" => Box::new(st_skl(StConfig::default(), 1)),
                        "TAGE64" => Box::new(tage64_baseline()),
                        _ => Box::new(st_tage64(StConfig::default(), 1)),
                    }
                },
                |mut m| {
                    for r in &recs {
                        black_box(m.process(0, r));
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let p = *profiles::by_name("505.mcf").expect("profile");
    c.bench_function("trace_generate_10k", |b| {
        b.iter(|| {
            let t = TraceGenerator::new(&p, 3).generate(10_000);
            black_box(t.branch_count())
        })
    });
}

criterion_group!(
    benches,
    bench_remap_circuits,
    bench_mappers,
    bench_models,
    bench_trace_generation
);
criterion_main!(benches);

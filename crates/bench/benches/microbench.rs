//! Criterion microbenchmarks: remapping-circuit evaluation cost, mapper
//! overhead, full-model throughput, trace generation, attack primitives,
//! and streamed- vs materialized-simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stbpu_bpu::{BaselineMapper, Bpu, EntityId, Mapper};
use stbpu_core::{st_skl, st_tage64, StConfig, StMapper};
use stbpu_predictors::{skl_baseline, tage64_baseline};
use stbpu_remap::{analysis, RemapSet};
use stbpu_sim::{simulate_with, Protection, SessionOptions, SimOptions, SimSession, Warmup};
use stbpu_trace::{profiles, TraceGenerator};

fn bench_remap_circuits(c: &mut Criterion) {
    let set = RemapSet::standard();
    let mut g = c.benchmark_group("remap_eval");
    g.bench_function("r1", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(set.r1(0xdead_beef, pc & ((1 << 48) - 1)))
        })
    });
    g.bench_function("rt", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(set.rt(0xdead_beef, pc & ((1 << 48) - 1), pc as u16))
        })
    });
    g.bench_function("reference_mulxor_hash", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(analysis::reference_hash(0xdead_beef, pc, 22))
        })
    });
    g.finish();
}

fn bench_mappers(c: &mut Criterion) {
    let mut g = c.benchmark_group("mapper_btb1");
    let base = BaselineMapper::new();
    g.bench_function("baseline", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(base.btb1(0, pc))
        })
    });
    let mut st = StMapper::new(StConfig::default(), 1);
    st.set_entity(0, EntityId::user(1));
    g.bench_function("stbpu", |b| {
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(st.btb1(0, pc))
        })
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let p = profiles::se_profile(profiles::by_name("525.x264").expect("profile"));
    let trace = TraceGenerator::new(&p, 7).generate(2_000);
    let recs: Vec<_> = trace.branches().map(|(_, r)| *r).collect();

    let mut g = c.benchmark_group("model_process_2k_branches");
    g.sample_size(20);
    for name in ["SKLCond", "ST_SKLCond", "TAGE64", "ST_TAGE64"] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter_batched(
                || -> Box<dyn Bpu> {
                    match name {
                        "SKLCond" => Box::new(skl_baseline()),
                        "ST_SKLCond" => Box::new(st_skl(StConfig::default(), 1)),
                        "TAGE64" => Box::new(tage64_baseline()),
                        _ => Box::new(st_tage64(StConfig::default(), 1)),
                    }
                },
                |mut m| {
                    for r in &recs {
                        black_box(m.process(0, r));
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let p = *profiles::by_name("505.mcf").expect("profile");
    c.bench_function("trace_generate_10k", |b| {
        b.iter(|| {
            let t = TraceGenerator::new(&p, 3).generate(10_000);
            black_box(t.branch_count())
        })
    });
}

/// Streamed (generator-sourced session) vs materialized (generate whole
/// trace, then `simulate_with`) throughput for one end-to-end workload
/// simulation — the two ends of the memory/latency trade-off.
fn bench_sim_throughput(c: &mut Criterion) {
    const N: usize = 10_000;
    let p = *profiles::by_name("505.mcf").expect("profile");
    let mut g = c.benchmark_group("sim_10k_branches");
    g.sample_size(20);
    g.bench_function("materialized", |b| {
        b.iter(|| {
            let trace = TraceGenerator::new(&p, 3).generate(N);
            let mut model = skl_baseline();
            let opts = SimOptions {
                warmup_frac: 0.0,
                threads: None,
            };
            black_box(
                simulate_with(&mut model, Protection::Unprotected, &trace, &opts)
                    .expect("simulates")
                    .oae,
            )
        })
    });
    g.bench_function("streamed", |b| {
        b.iter(|| {
            let mut model = skl_baseline();
            let mut session = SimSession::new(
                &mut model,
                Protection::Unprotected,
                SessionOptions {
                    warmup: Warmup::Branches(0),
                    ..SessionOptions::default()
                },
            )
            .expect("session opens");
            let mut src = TraceGenerator::new(&p, 3).into_source(N);
            session.run(&mut src).expect("simulates");
            black_box(session.finish().oae)
        })
    });
    // Replay from an already-materialized trace (the engine's shared-trace
    // workload path): isolates session overhead from generation cost.
    let trace = TraceGenerator::new(&p, 3).generate(N);
    g.bench_function("streamed_replay", |b| {
        b.iter(|| {
            let mut model = skl_baseline();
            let mut session = SimSession::new(
                &mut model,
                Protection::Unprotected,
                SessionOptions {
                    warmup: Warmup::Branches(0),
                    ..SessionOptions::default()
                },
            )
            .expect("session opens");
            session.run(&mut trace.source()).expect("simulates");
            black_box(session.finish().oae)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_remap_circuits,
    bench_mappers,
    bench_models,
    bench_trace_generation,
    bench_sim_throughput
);
criterion_main!(benches);

//! Criterion ablation benches for the design choices called out in
//! DESIGN.md §5: the hardware remap circuit vs a multi-cycle software-style
//! mixer, and XOR target encryption vs a 2-round Feistel model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stbpu_remap::{analysis, RemapSet};

/// A 2-round Feistel network over 32-bit targets (the stronger cipher the
/// paper considered and rejected — each round costs multiple cycles of
/// latency in the front end for no security gain under re-randomization).
fn feistel2(key: u64, v: u32) -> u32 {
    let mut l = (v >> 16) as u16;
    let mut r = (v & 0xffff) as u16;
    for round in 0..2u64 {
        let k = (key >> (round * 16)) as u16;
        let f = (r ^ k).wrapping_mul(0x9e37).rotate_left(5);
        let nl = r;
        r = l ^ f;
        l = nl;
    }
    ((l as u32) << 16) | r as u32
}

fn ablate_cipher(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_target_cipher");
    let phi = 0xdead_beefu32;
    g.bench_function("xor_phi", |b| {
        let mut v = 0x1234u32;
        b.iter(|| {
            v = v.wrapping_add(0x40);
            black_box(v ^ phi)
        })
    });
    g.bench_function("feistel_2round", |b| {
        let mut v = 0x1234u32;
        b.iter(|| {
            v = v.wrapping_add(0x40);
            black_box(feistel2(0xdead_beef_0bad_f00d, v))
        })
    });
    g.finish();
}

fn ablate_remap_vs_software(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_remap_impl");
    let set = RemapSet::standard();
    g.bench_function("hw_circuit_r3", |b| {
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(set.r3(1, pc & ((1 << 48) - 1)))
        })
    });
    g.bench_function("sw_mulxor_14bit", |b| {
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(0x44);
            black_box(analysis::reference_hash(1, pc, 14))
        })
    });
    g.finish();
}

criterion_group!(benches, ablate_cipher, ablate_remap_vs_software);
criterion_main!(benches);

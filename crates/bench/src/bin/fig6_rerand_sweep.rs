//! Thin shim over [`stbpu_bench::figures::fig6`]: the `stbpu figures
//! fig6` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin fig6_rerand_sweep` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::fig6::run(&stbpu_bench::Knobs::from_env());
}

//! Thin shim over [`stbpu_bench::figures::fig2`]: the `stbpu figures
//! fig2` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin fig2_r1` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::fig2::run(&stbpu_bench::Knobs::from_env());
}

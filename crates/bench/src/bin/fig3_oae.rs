//! Thin shim over [`stbpu_bench::figures::fig3`]: the `stbpu figures
//! fig3` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin fig3_oae` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::fig3::run(&stbpu_bench::Knobs::from_env());
}

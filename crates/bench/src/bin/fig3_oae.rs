//! Figure 3: overall branch prediction accuracy (OAE) of the five
//! protection schemes, normalized by the unprotected baseline, over the 23
//! SPEC CPU 2017 workloads and the user/server application traces.

use stbpu_bench::{branches, mean, parallel_map, rule, seed};
use stbpu_sim::run_fig3_suite;
use stbpu_trace::{profiles, TraceGenerator};

fn main() {
    let n = branches();
    let seed = seed();
    let workloads = profiles::fig3_workloads();
    println!("Figure 3 — OAE normalized by baseline ({n} branches/workload, seed {seed})");
    rule(100);
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>8}",
        "workload", "baseline", "STBPU", "ucode1", "ucode2", "conserv", "rerand"
    );
    rule(100);

    let rows = parallel_map(workloads, |p| {
        let trace = TraceGenerator::new(p, seed).generate(n);
        let suite = run_fig3_suite(&trace, seed, 0.1);
        let base = suite[0].oae.max(1e-9);
        (
            p.name,
            suite[0].oae,
            [suite[1].oae / base, suite[2].oae / base, suite[3].oae / base, suite[4].oae / base],
            suite[1].rerandomizations,
        )
    });

    let mut norm = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for (name, base, n4, rer) in &rows {
        println!(
            "{:<24} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {:>8}",
            name, base, n4[0], n4[1], n4[2], n4[3], rer
        );
        for k in 0..4 {
            norm[k].push(n4[k]);
        }
    }
    rule(100);
    println!(
        "{:<24} {:>9} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
        "average (normalized)",
        "1.0000",
        mean(&norm[0]),
        mean(&norm[1]),
        mean(&norm[2]),
        mean(&norm[3]),
    );
    println!();
    println!("paper averages: STBPU 0.99, ucode protection 0.82, ucode protection2 0.77, conservative 0.88");
    println!("expected shape: STBPU ~1 %, microcode models >= ~10 % loss, conservative in between");
}

//! Thin shim over [`stbpu_bench::figures::section6`]: the `stbpu figures
//! section6` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin section6_thresholds` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::section6::run(&stbpu_bench::Knobs::from_env());
}

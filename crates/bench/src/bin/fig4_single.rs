//! Thin shim over [`stbpu_bench::figures::fig4`]: the `stbpu figures
//! fig4` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin fig4_single` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::fig4::run(&stbpu_bench::Knobs::from_env());
}

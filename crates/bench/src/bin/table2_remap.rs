//! Thin shim over [`stbpu_bench::figures::table2`]: the `stbpu figures
//! table2` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin table2_remap` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::table2::run(&stbpu_bench::Knobs::from_env());
}

//! Thin shim over [`stbpu_bench::figures::ablations`]: the `stbpu figures
//! ablations` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin ablations` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::ablations::run(&stbpu_bench::Knobs::from_env());
}

//! Accuracy-side ablations for the design choices documented in
//! DESIGN.md §5 (the latency-side ablations live in `benches/ablations.rs`):
//!
//! 1. SKL hybrid chooser vs plain gshare vs one-level only.
//! 2. Separate TAGE-misprediction threshold register on/off in SMT.
//! 3. Remap statistical quality: generated circuits vs software mixer.

use stbpu_bench::{branches, mean, rule, seed};
use stbpu_bpu::{BaselineMapper, BranchKind, BtbConfig};
use stbpu_core::{StConfig, StMapper};
use stbpu_pipeline::{run_smt, MemoryProfile, PipelineConfig};
use stbpu_predictors::{FullBpu, Gshare, SklCond, Tage, TageConfig};
use stbpu_remap::analysis;
use stbpu_trace::{profiles, TraceGenerator};

fn main() {
    let n = (branches() / 2).max(20_000);
    let seed = seed();

    // --- Ablation 1: conditional predictor composition ---
    println!("Ablation 1 — SKL hybrid vs plain gshare (direction rate)");
    rule(64);
    let p = profiles::se_profile(profiles::by_name("541.leela").expect("profile"));
    let trace = TraceGenerator::new(&p, seed).generate(n);
    let mut hybrid = FullBpu::new("hybrid", SklCond::new(), BaselineMapper::new(), BtbConfig::skylake(), false);
    let mut gshare = FullBpu::new("gshare", Gshare::new(1 << 14), BaselineMapper::new(), BtbConfig::skylake(), false);
    for (tid, rec) in trace.branches() {
        use stbpu_bpu::Bpu;
        hybrid.process(tid as usize, rec);
        gshare.process(tid as usize, rec);
    }
    use stbpu_bpu::Bpu;
    println!("  hybrid (1-level + 2-level + chooser): {:.4}", hybrid.stats().direction_rate());
    println!("  plain gshare (2-level only):          {:.4}", gshare.stats().direction_rate());
    println!();

    // --- Ablation 2: separate TAGE threshold register in SMT ---
    println!("Ablation 2 — separate TAGE misprediction register (ST TAGE64, SMT)");
    rule(64);
    let pa = profiles::se_profile(profiles::by_name("503.bwaves").expect("profile"));
    let pb = profiles::se_profile(profiles::by_name("505.mcf").expect("profile"));
    let ta = TraceGenerator::new(&pa, seed).generate(n);
    let tb = TraceGenerator::new(&pb, seed ^ 9).generate(n);
    let (ma, mb) = (MemoryProfile::from(&pa), MemoryProfile::from(&pb));
    let cfg = PipelineConfig::table4();
    let mut rates = Vec::new();
    for separate in [true, false] {
        let st_cfg = StConfig { separate_tage_register: separate, ..StConfig::with_r(0.002) };
        let mut st = FullBpu::new(
            if separate { "ST_TAGE64(sep)" } else { "ST_TAGE64(shared)" },
            Tage::new(TageConfig::kb64()),
            StMapper::new(st_cfg, seed),
            BtbConfig::skylake(),
            false,
        );
        let r = run_smt(&mut st, [&ta, &tb], &cfg, [&ma, &mb]);
        println!(
            "  separate={separate:<5} dir rate {:.4}, Hmean IPC {:.3}, re-randomizations {}",
            r.direction_rate, r.hmean_ipc, r.rerandomizations
        );
        rates.push(r.direction_rate);
    }
    println!("  (the separate register shields the token from TAGE training noise)");
    println!();

    // --- Ablation 3: remap circuit quality vs software mixer ---
    println!("Ablation 3 — statistical quality: generated circuits vs mul-xor mixer");
    rule(64);
    let set = stbpu_remap::RemapSet::standard();
    for (name, c) in set.circuits() {
        let av = analysis::avalanche(c, 300, 11);
        println!(
            "  {name}: avalanche {:.3} (ideal 0.5), critical path {}T (budget 45T)",
            av.mean_hd,
            c.cost().critical_path
        );
    }
    println!("  mul-xor mixer: avalanche ~0.5 but needs a 64x64 multiplier (~3-5 cycles) — fails C1");
    println!();
    let _ = mean(&rates);
    let _ = BranchKind::ALL;
}

//! Thin shim over [`stbpu_bench::figures::fig5`]: the `stbpu figures
//! fig5` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin fig5_smt` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::fig5::run(&stbpu_bench::Knobs::from_env());
}

//! Thin shim over [`stbpu_bench::figures::table1`]: the `stbpu figures
//! table1` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin table1_attacks` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::table1::run(&stbpu_bench::Knobs::from_env());
}

//! Table I: the collision-based attack surface, executed cell by cell
//! against the baseline BPU and STBPU.

use stbpu_attacks::surface::{evaluate_surface, Vector};
use stbpu_bench::{rule, seed};

fn verdict(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "VULNERABLE",
        Some(false) => "blocked",
        None => "n/a",
    }
}

fn main() {
    println!(
        "Table I — collision-based attack surface (executed, seed {})",
        seed()
    );
    rule(118);
    println!(
        "{:<5} {:<14} {:<12} {:<12} {:<70}",
        "struct", "vector", "baseline", "STBPU", "scenario"
    );
    rule(118);
    for c in evaluate_surface(seed()) {
        let vec = match c.vector {
            Vector::ReuseHome => "reuse/home",
            Vector::ReuseAway => "reuse/away",
            Vector::EvictionHome => "evict/home",
            Vector::EvictionAway => "evict/away",
        };
        println!(
            "{:<5} {:<14} {:<12} {:<12} {:<70}",
            format!("{:?}", c.structure),
            vec,
            verdict(c.baseline_vulnerable),
            verdict(c.stbpu_vulnerable),
            c.description
        );
        println!(
            "{:<5} {:<14} {:<12} {:<12}   note: {}",
            "", "", "", "", c.note
        );
    }
    rule(118);
    println!("expected: baseline vulnerable in all 10 applicable cells; STBPU blocks every");
    println!(
        "address-revealing channel (the RSB occupancy signal survives but leaks no addresses)."
    );
}

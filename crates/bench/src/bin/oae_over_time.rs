//! Thin shim over [`stbpu_bench::figures::oae_over_time`]: the `stbpu figures
//! oae_over_time` subcommand runs the same implementation; this binary keeps the
//! historical `cargo run --bin oae_over_time` interface (scaled by the
//! `STBPU_*` environment knobs).

fn main() {
    stbpu_bench::figures::oae_over_time::run(&stbpu_bench::Knobs::from_env());
}

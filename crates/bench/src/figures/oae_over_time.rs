//! OAE over time: long-horizon streaming runs through `SimSession` with
//! the built-in interval recorder — accuracy, flush and re-randomization
//! timelines for baseline, STBPU and microcode flushing over one workload.
//!
//! This is the long-horizon scenario the materialized API could not run:
//! the stream is generated as it is simulated (O(1) memory), so
//! `STBPU_BRANCHES=10000000` (or more) works without materializing a
//! 10M-event vector. The re-randomization-interval column shows the
//! defense's rhythm as thresholds accumulate.
//!
//! Extra knobs: [`Knobs::workload`] (default `541.leela`) and
//! [`Knobs::windows`] — number of OAE windows printed (default 20).

use crate::{rule, Knobs};
use stbpu_engine::ModelRegistry;
use stbpu_sim::{IntervalRecorder, Protection, SessionOptions, SimSession, Warmup};
use stbpu_trace::{profiles, TraceGenerator};

/// Runs the streaming OAE-over-time comparison.
pub fn run(k: &Knobs) {
    let n = k.branches;
    let seed = k.seed;
    let workload = k.workload.clone();
    let windows = k.windows.max(2);
    let interval = (n as u64 / windows as u64).max(1);
    let profile = profiles::by_name(&workload).unwrap_or_else(|| {
        eprintln!("unknown workload '{workload}'");
        std::process::exit(2);
    });
    let registry = ModelRegistry::standard();

    println!(
        "OAE over time — {workload}, {n} branches streamed, windows of {interval} (seed {seed})"
    );
    println!("(streaming session: no event vector is materialized at any run length)");

    let schemes: [(&str, Protection); 3] = [
        ("skl", Protection::Unprotected),
        ("st_skl@r=0.05", Protection::Stbpu),
        ("skl", Protection::Ucode1),
    ];

    let mut series = Vec::new();
    for (spec, policy) in schemes {
        let mut model = registry.build(spec, seed).expect("registered");
        let mut recorder = IntervalRecorder::new();
        let mut session = SimSession::new(
            &mut model,
            policy,
            SessionOptions {
                warmup: Warmup::Branches(0),
                interval: Some(interval),
                ..SessionOptions::default()
            },
        )
        .expect("session opens");
        session.attach(&mut recorder);
        let mut src = TraceGenerator::new(profile, seed).into_source(n);
        session.run(&mut src).expect("stream simulates");
        let report = session.finish();
        series.push((policy.label(), report, recorder.into_windows()));
    }

    rule(96);
    print!("{:<14}", "window start");
    for (label, _, _) in &series {
        print!(" {label:>18}");
    }
    println!(" {:>14} {:>12}", "rerand (ST)", "flush (uc1)");
    rule(96);
    let rows = series[0].2.len();
    for i in 0..rows {
        print!("{:<14}", series[0].2[i].start_branch);
        for (_, _, windows) in &series {
            print!(" {:>18.4}", windows[i].oae());
        }
        println!(
            " {:>14} {:>12}",
            series[1].2[i].rerandomizations, series[2].2[i].flushes
        );
    }
    rule(96);
    print!("{:<14}", "overall");
    for (_, report, _) in &series {
        print!(" {:>18.4}", report.oae);
    }
    println!(
        " {:>14} {:>12}",
        series[1].1.rerandomizations, series[2].1.flushes
    );
    println!();
    println!("expected shape: all schemes warm up over the first windows; STBPU tracks baseline");
    println!("closely while ucode flushing stays depressed on switch-heavy workloads.");
}

//! Figure 4: single-workload pipeline evaluation — reduction of direction
//! and target prediction rates and normalized IPC for the four ST models
//! against their unprotected counterparts, over 18 SPEC CPU 2017 workloads.

use crate::{mean, parallel_map, rule, Knobs};
use stbpu_engine::ModelRegistry;
use stbpu_pipeline::{run_single, MemoryProfile, PipelineConfig};
use stbpu_trace::{profiles, TraceGenerator};

/// The four (baseline, ST) registry pairs of the Figure 4 columns.
const PAIRS: [(&str, &str); 4] = [
    ("skl", "st_skl"),
    ("tage8", "st_tage8"),
    ("tage64", "st_tage64"),
    ("perceptron", "st_perceptron"),
];

/// Runs the Figure 4 single-workload pipeline comparison.
pub fn run(k: &Knobs) {
    let n = k.branches;
    let seed = k.seed;
    let cfg = PipelineConfig::table4();
    let registry = ModelRegistry::standard();
    println!("Figure 4 — single-workload evaluation ({n} branches, seed {seed})");
    println!("pipeline: {}", cfg.describe());
    rule(112);
    println!(
        "{:<16} {:>22} {:>22} {:>22} {:>22}",
        "workload", "SKLCond", "TAGE8KB", "TAGE64KB", "Perceptron"
    );
    println!("{:<16} {}", "", "  d-red  t-red  n-IPC".repeat(4));
    rule(112);

    let rows = parallel_map(profiles::FIG4_WORKLOADS.to_vec(), |&w| {
        let p = profiles::se_profile(profiles::by_name(w).expect("profile"));
        let trace = TraceGenerator::new(&p, seed).generate(n);
        let mem = MemoryProfile::from(&p);
        let cells: Vec<(f64, f64, f64)> = PAIRS
            .iter()
            .map(|&(base_spec, st_spec)| {
                let mut base = registry.build(base_spec, seed).expect("registered");
                let mut st = registry.build(st_spec, seed).expect("registered");
                let rb = run_single(&mut base, &trace, &cfg, &mem);
                let rs = run_single(&mut st, &trace, &cfg, &mem);
                (
                    rb.direction_rate - rs.direction_rate,
                    rb.target_rate - rs.target_rate,
                    rs.ipc / rb.ipc.max(1e-9),
                )
            })
            .collect();
        (w, cells)
    });

    let mut agg: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); 4];
    for (w, cells) in &rows {
        let short = w.split('.').nth(1).unwrap_or(w);
        print!("{short:<16}");
        for (m, c) in cells.iter().enumerate() {
            print!(" {:>6.3} {:>6.3} {:>6.3}", c.0, c.1, c.2);
            agg[m].push(*c);
        }
        println!();
    }
    rule(112);
    print!("{:<16}", "average");
    for column in &agg {
        let d = mean(&column.iter().map(|c| c.0).collect::<Vec<_>>());
        let t = mean(&column.iter().map(|c| c.1).collect::<Vec<_>>());
        let i = mean(&column.iter().map(|c| c.2).collect::<Vec<_>>());
        print!(" {d:>6.3} {t:>6.3} {i:>6.3}");
    }
    println!();
    println!();
    println!("paper averages (dir-red / tgt-red / norm-IPC):");
    println!("  SKLCond    0.010 / -0.001 / 0.984   TAGE 8KB  0.011 / 0.017 / 0.969");
    println!("  TAGE 64KB  0.009 /  0.018 / 0.977   Perceptron 0.001 / 0.012 / 1.066");
    println!("expected shape: <2% reductions, normalized IPC within ~4% of 1.0");
}

//! Figure 2: construction of the R1 remapping function — stage structure,
//! primitive counts and the transistor cost model, with the validation
//! metrics of Section V-A/B.

use crate::{rule, Knobs};
use stbpu_remap::{analysis, RemapSet};

/// Prints the Figure 2 construction report (scale-independent).
pub fn run(_k: &Knobs) {
    let set = RemapSet::standard();
    let (_, r1) = set.circuits()[0];
    println!("Figure 2 — R1 remapping function construction (80 -> 22 bits)");
    rule(78);
    print!("{}", r1.describe());
    rule(78);
    let cost = r1.cost();
    println!(
        "critical path {} series transistors (paper's R1: 36; single-cycle budget 45)",
        cost.critical_path
    );
    let av = analysis::avalanche(r1, 2_000, 3);
    println!(
        "avalanche: mean HD {:.4} (ideal 0.5), CV {:.4}, in-bit spread {:.4}, out-bit spread {:.4}",
        av.mean_hd, av.cv, av.input_bit_spread, av.output_bit_spread
    );
    let un_idx = analysis::uniformity(r1, 0, 9, 64, 5);
    let un_tag = analysis::uniformity(r1, 9, 8, 64, 6);
    println!(
        "uniformity (balls/bins): index field CV {:.4} (poisson {:.4}), tag field CV {:.4} (poisson {:.4})",
        un_idx.cv, un_idx.expected_cv, un_tag.cv, un_tag.expected_cv
    );
}

//! Figure 3: overall branch prediction accuracy (OAE) of the five
//! protection schemes, normalized by the unprotected baseline, over the 23
//! SPEC CPU 2017 workloads and the user/server application traces.

use crate::{mean, rule, Knobs};
use stbpu_engine::{Experiment, Scenario};
use stbpu_trace::profiles;

/// Runs the Figure 3 grid and prints the normalized-OAE table.
pub fn run(k: &Knobs) {
    let n = k.branches;
    let seed = k.seed;
    let set = Experiment::new("fig3")
        .workloads(profiles::fig3_workloads().iter().map(|p| p.name))
        .scenarios(Scenario::fig3())
        .branches(n)
        .seed(seed)
        .warmup(0.1)
        .run()
        .expect("fig3 grid is valid");

    println!("Figure 3 — OAE normalized by baseline ({n} branches/workload, seed {seed})");
    rule(100);
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>8}",
        "workload", "baseline", "STBPU", "ucode1", "ucode2", "conserv", "rerand"
    );
    rule(100);

    let normalized = set.oae_normalized_to_first();
    for (suite, norm) in set.suites().zip(&normalized) {
        println!(
            "{:<24} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}  {:>8}",
            suite[0].workload,
            suite[0].report.oae,
            norm[0],
            norm[1],
            norm[2],
            norm[3],
            suite[1].report.rerandomizations,
        );
    }
    rule(100);
    let columns: Vec<Vec<f64>> = (0..4)
        .map(|k| normalized.iter().map(|row| row[k]).collect())
        .collect();
    println!(
        "{:<24} {:>9} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
        "average (normalized)",
        "1.0000",
        mean(&columns[0]),
        mean(&columns[1]),
        mean(&columns[2]),
        mean(&columns[3]),
    );
    println!();
    println!("paper averages: STBPU 0.99, ucode protection 0.82, ucode protection2 0.77, conservative 0.88");
    println!("expected shape: STBPU ~1 %, microcode models >= ~10 % loss, conservative in between");
}

//! Section VI-5 / VII-A: attack complexities and the re-randomization
//! thresholds derived from them, plus Monte-Carlo cross-checks of the
//! closed-form analysis.

use crate::{rule, Knobs};
use stbpu_attacks::analysis::{self, BpuGeometry};
use stbpu_attacks::harness::AttackBpu;
use stbpu_attacks::reuse;
use stbpu_core::StConfig;

/// Prints the attack-complexity table, threshold derivation and
/// Monte-Carlo cross-checks.
pub fn run(k: &Knobs) {
    let g = BpuGeometry::skylake();
    let t = analysis::complexity_table(&g);
    println!("Section VI-5 — attack complexities (events to 50 % success)");
    rule(84);
    println!("{:<46} {:>16} {:>16}", "attack", "computed", "paper");
    rule(84);
    println!(
        "{:<46} {:>16.3e} {:>16}",
        "BTB reuse side channel (mispredictions)", t.btb_reuse_misp, "6.9e8"
    );
    println!(
        "{:<46} {:>16.3e} {:>16}",
        "BTB reuse side channel (evictions)", t.btb_reuse_ev, "~2^21"
    );
    println!(
        "{:<46} {:>16.3e} {:>16}",
        "PHT reuse / BranchScope (mispredictions)", t.pht_reuse_misp, "8.38e5"
    );
    println!(
        "{:<46} {:>16.3e} {:>16}",
        "BTB eviction side channel (evictions, Eq 4)", t.btb_eviction_ev, "5.3e5"
    );
    println!(
        "{:<46} {:>16.3e} {:>16}",
        "Spectre v2 / SpectreRSB (mispredictions)", t.injection_misp, "~2^31"
    );
    rule(84);

    println!();
    println!("Re-randomization thresholds Γ = r · C (Section VII-A)");
    rule(60);
    println!(
        "{:<10} {:>20} {:>20}",
        "r", "Γ mispredictions", "Γ evictions"
    );
    rule(60);
    for r in [1.0, 0.1, 0.05, 0.01] {
        let (m, e) = analysis::thresholds(&g, r);
        println!("{r:<10} {m:>20} {e:>20}");
    }
    rule(60);
    println!("paper: r=0.1 -> 8.3e4 / 5.3e4;  r=0.05 -> 4.15e4 / 2.65e4 (defaults)");

    println!();
    println!("Monte-Carlo cross-checks (seed {})", k.seed);
    rule(84);
    // Eq 3: naive eviction-set guessing probability.
    println!(
        "naive W-way set guess probability (Eq 3): {:.3e} — brute force is hopeless",
        analysis::eq3_naive_eviction_set(g.btb_sets as f64, g.btb_ways as f64)
    );
    // Collision probability: measured vs 1/(I*T*O).
    let p_formula = analysis::collision_probability(&g);
    println!(
        "P(A=>V) single-branch collision (formula): {:.3e}",
        p_formula
    );

    // Probe-set growth on a scaled-down threshold: the defense fires first.
    let cfg = StConfig {
        r: 1.0,
        misp_complexity: 2_000.0,
        eviction_complexity: 2_000.0,
        ..StConfig::default()
    };
    let mut bpu = AttackBpu::stbpu(cfg, k.seed);
    let r = reuse::grow_probe_set(&mut bpu, usize::MAX, 1 << 22);
    println!(
        "probe-set growth under STBPU (thresholds scaled to 2e3): stopped at |SB|={} after {} misp / {} ev, {} re-randomizations",
        r.set_size, r.mispredictions, r.evictions, r.rerandomizations
    );
    println!(
        "full-scale equivalent: |SB| must reach I*T*O/2 = {:.2e} — re-randomization wins by ~{:.0}x",
        (g.btb_sets * g.btb_tags * g.btb_offsets) as f64 / 2.0,
        (g.btb_sets * g.btb_tags * g.btb_offsets) as f64 / 2.0 / (r.set_size.max(1) as f64)
    );
}

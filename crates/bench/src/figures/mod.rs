//! Library implementations of every figure/table of the paper's
//! evaluation.
//!
//! Each submodule exposes `pub fn run(&Knobs)` printing the same
//! rows/series the paper reports. [`ALL`] is the single source of truth
//! for the set of figures — the thin `src/bin/` shims, the `stbpu figures`
//! CLI subcommand and its `--help` text all resolve through it, so a new
//! figure registered here is reachable everywhere at once.

pub mod ablations;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod oae_over_time;
pub mod section6;
pub mod table1;
pub mod table2;

use crate::Knobs;

/// One entry of the figure registry.
#[derive(Clone, Copy)]
pub struct Figure {
    /// CLI/bin name (`fig3`, `table1`, …).
    pub name: &'static str,
    /// One-line description for help output.
    pub summary: &'static str,
    /// The implementation.
    pub run: fn(&Knobs),
}

/// Every figure/table the harness reproduces, in paper order.
pub const ALL: &[Figure] = &[
    Figure {
        name: "fig2",
        summary: "R1 remapping function construction + validation metrics",
        run: fig2::run,
    },
    Figure {
        name: "fig3",
        summary: "OAE of the five protection schemes over all workloads",
        run: fig3::run,
    },
    Figure {
        name: "fig4",
        summary: "single-workload pipeline evaluation (rates + IPC)",
        run: fig4::run,
    },
    Figure {
        name: "fig5",
        summary: "SMT pair pipeline evaluation (rates + harmonic IPC)",
        run: fig5::run,
    },
    Figure {
        name: "fig6",
        summary: "aggressive re-randomization threshold sweep (SMT)",
        run: fig6::run,
    },
    Figure {
        name: "table1",
        summary: "collision-based attack surface, executed cell by cell",
        run: table1::run,
    },
    Figure {
        name: "table2",
        summary: "mapping-function I/O geometry + circuit properties",
        run: table2::run,
    },
    Figure {
        name: "section6",
        summary: "attack complexities and re-randomization thresholds",
        run: section6::run,
    },
    Figure {
        name: "ablations",
        summary: "accuracy-side design-choice ablations",
        run: ablations::run,
    },
    Figure {
        name: "oae_over_time",
        summary: "streaming OAE / flush / re-randomization timelines",
        run: oae_over_time::run,
    },
];

/// Looks up a figure by name.
pub fn by_name(name: &str) -> Option<&'static Figure> {
    ALL.iter().find(|f| f.name == name)
}

//! Figure 5: SMT evaluation — workload pairs sharing one core, reduction
//! of direction/target prediction rates and normalized harmonic-mean IPC
//! for the four ST models against their unprotected counterparts.

use crate::{mean, parallel_map, rule, Knobs};
use stbpu_engine::ModelRegistry;
use stbpu_pipeline::{run_smt, MemoryProfile, PipelineConfig};
use stbpu_trace::{profiles, TraceGenerator};

/// The four (baseline, ST) registry pairs of the Figure 5 columns.
const PAIRS: [(&str, &str); 4] = [
    ("skl", "st_skl"),
    ("tage8", "st_tage8"),
    ("tage64", "st_tage64"),
    ("perceptron", "st_perceptron"),
];

fn short(n: &str) -> &str {
    n.split('.').nth(1).unwrap_or(n)
}

/// Runs the Figure 5 SMT-pair pipeline comparison.
pub fn run(k: &Knobs) {
    let n = k.branches / 2; // per-thread branches
    let seed = k.seed;
    let cfg = PipelineConfig::table4();
    let registry = ModelRegistry::standard();
    println!("Figure 5 — SMT pair evaluation ({n} branches/thread, seed {seed})");
    println!("pipeline: {} (2 SMT threads, shared BPU)", cfg.describe());
    rule(118);
    println!("{:<26} {}", "pair", "  d-red  t-red  n-IPC".repeat(4));
    println!(
        "{:<26} {:>22} {:>22} {:>22} {:>22}",
        "", "SKLCond", "TAGE8KB", "TAGE64KB", "Perceptron"
    );
    rule(118);

    let rows = parallel_map(profiles::FIG5_PAIRS.to_vec(), |&(a, b)| {
        let pa = profiles::se_profile(profiles::by_name(a).expect("profile"));
        let pb = profiles::se_profile(profiles::by_name(b).expect("profile"));
        let ta = TraceGenerator::new(&pa, seed).generate(n);
        let tb = TraceGenerator::new(&pb, seed ^ 1).generate(n);
        let (ma, mb) = (MemoryProfile::from(&pa), MemoryProfile::from(&pb));
        let cells: Vec<(f64, f64, f64)> = PAIRS
            .iter()
            .map(|&(base_spec, st_spec)| {
                let mut base = registry.build(base_spec, seed).expect("registered");
                let mut st = registry.build(st_spec, seed).expect("registered");
                let rb = run_smt(&mut base, [&ta, &tb], &cfg, [&ma, &mb]);
                let rs = run_smt(&mut st, [&ta, &tb], &cfg, [&ma, &mb]);
                (
                    rb.direction_rate - rs.direction_rate,
                    rb.target_rate - rs.target_rate,
                    rs.hmean_ipc / rb.hmean_ipc.max(1e-9),
                )
            })
            .collect();
        (format!("{}_{}", short(a), short(b)), cells)
    });

    let mut agg: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); 4];
    for (name, cells) in &rows {
        print!("{name:<26}");
        for (m, c) in cells.iter().enumerate() {
            print!(" {:>6.3} {:>6.3} {:>6.3}", c.0, c.1, c.2);
            agg[m].push(*c);
        }
        println!();
    }
    rule(118);
    print!("{:<26}", "average");
    for a in &agg {
        let d = mean(&a.iter().map(|c| c.0).collect::<Vec<_>>());
        let t = mean(&a.iter().map(|c| c.1).collect::<Vec<_>>());
        let i = mean(&a.iter().map(|c| c.2).collect::<Vec<_>>());
        print!(" {d:>6.3} {t:>6.3} {i:>6.3}");
    }
    println!();
    println!();
    println!("paper averages (dir-red / tgt-red / norm-Hmean-IPC):");
    println!("  SKLCond    0.038 / 0.004 / 0.951   TAGE 8KB  0.019 / 0.017 / 0.980");
    println!("  TAGE 64KB  0.016 / 0.021 / 0.981   Perceptron 0.013 / 0.037 / 1.009");
    println!("expected shape: ST_SKLCond suffers most (no separate TAGE register); throughput loss < ~5 %");
}

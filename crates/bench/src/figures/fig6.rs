//! Figure 6: effect of aggressive ST re-randomization thresholds on the
//! ST TAGE-SC-L 64KB model in SMT mode — accuracy and normalized IPC as
//! the attack difficulty factor `r` shrinks (defending against
//! hypothetically faster attacks).

use crate::{mean, parallel_map, rule, Knobs};
use stbpu_core::StConfig;
use stbpu_engine::ModelRegistry;
use stbpu_pipeline::{run_smt, MemoryProfile, PipelineConfig};
use stbpu_trace::{profiles, TraceGenerator};

/// The sweep: r = 5e-2 (paper default) down to 1e-6 (re-randomization
/// every few dozen events).
const R_VALUES: [f64; 6] = [5e-2, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6];

/// Runs the Figure 6 aggressive re-randomization sweep.
pub fn run(k: &Knobs) {
    let n = k.smt_branches();
    let seed = k.seed;
    let pair_count = k.fig6_pairs();
    let cfg = PipelineConfig::table4();
    let registry = ModelRegistry::standard();
    println!("Figure 6 — aggressive re-randomization sweep, ST TAGE_SC_L_64KB in SMT");
    println!("({n} branches/thread, {pair_count} pairs, seed {seed}; paper uses 42 pairs)");
    rule(94);
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "r", "Γ_misp", "Γ_ev", "dir rate", "norm IPC", "rerand/pair"
    );
    rule(94);

    let pairs: Vec<(usize, &str, &str)> = profiles::FIG5_PAIRS[..pair_count]
        .iter()
        .enumerate()
        .map(|(i, (a, b))| (i, *a, *b))
        .collect();

    for r in R_VALUES {
        let st_spec = format!("st_tage64@r={r}");
        let rows = parallel_map(pairs.clone(), |&(i, a, b)| {
            let pa = profiles::se_profile(profiles::by_name(a).expect("profile"));
            let pb = profiles::se_profile(profiles::by_name(b).expect("profile"));
            let ta = TraceGenerator::new(&pa, seed ^ i as u64).generate(n);
            let tb = TraceGenerator::new(&pb, seed ^ (i as u64) << 8).generate(n);
            let (ma, mb) = (MemoryProfile::from(&pa), MemoryProfile::from(&pb));
            let mut base = registry.build("tage64", seed).expect("registered");
            let rb = run_smt(&mut base, [&ta, &tb], &cfg, [&ma, &mb]);
            let mut st = registry
                .build(&st_spec, seed ^ i as u64)
                .expect("registered");
            let rs = run_smt(&mut st, [&ta, &tb], &cfg, [&ma, &mb]);
            (
                rs.direction_rate,
                rs.hmean_ipc / rb.hmean_ipc.max(1e-9),
                rs.rerandomizations as f64,
            )
        });
        let dir = mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        let ipc = mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let rer = mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        let thresholds = StConfig::with_r(r);
        println!(
            "{:<10.0e} {:>12} {:>12} {:>12.4} {:>14.4} {:>14.1}",
            r,
            thresholds.misp_threshold(),
            thresholds.eviction_threshold(),
            dir,
            ipc,
            rer
        );
    }
    rule(94);
    println!(
        "paper shape: accuracy stays above ~95 % until thresholds reach a few hundred events;"
    );
    println!(
        "at extreme r the ST re-randomizes constantly, BPU training ceases and IPC collapses."
    );
}

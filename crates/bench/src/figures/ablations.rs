//! Accuracy-side ablations for the design choices documented in
//! DESIGN.md §5 (the latency-side ablations live in `benches/ablations.rs`):
//!
//! 1. SKL hybrid chooser vs plain gshare vs one-level only.
//! 2. Separate TAGE-misprediction threshold register on/off in SMT.
//! 3. Remap statistical quality: generated circuits vs software mixer.
//!
//! Ablation models are composed declaratively through the engine's
//! [`stbpu_engine::ModelSpec`] API — the open replacement for
//! hand-assembled `FullBpu`s.

use crate::{rule, Knobs};
use stbpu_core::StConfig;
use stbpu_engine::{MapperSpec, ModelSpec, PredictorSpec};
use stbpu_pipeline::{run_smt, MemoryProfile, PipelineConfig};
use stbpu_remap::analysis;
use stbpu_sim::{simulate, Protection};
use stbpu_trace::{profiles, TraceGenerator};

/// Runs the three accuracy-side ablations.
pub fn run(k: &Knobs) {
    let n = k.smt_branches();
    let seed = k.seed;

    // --- Ablation 1: conditional predictor composition ---
    println!("Ablation 1 — SKL hybrid vs plain gshare (direction rate)");
    rule(64);
    let p = profiles::se_profile(profiles::by_name("541.leela").expect("profile"));
    let trace = TraceGenerator::new(&p, seed).generate(n);
    for spec in [
        ModelSpec::new("hybrid", PredictorSpec::SklCond, MapperSpec::Baseline),
        ModelSpec::new(
            "gshare",
            PredictorSpec::Gshare { bits: 14 },
            MapperSpec::Baseline,
        ),
    ] {
        let mut model = spec.build(seed);
        let report = simulate(&mut model, Protection::Unprotected, &trace, 0.0);
        println!("  {:<38} {:.4}", spec.label, report.direction_rate);
    }
    println!("  (hybrid = 1-level + 2-level + chooser; gshare = 2-level only)");
    println!();

    // --- Ablation 2: separate TAGE threshold register in SMT ---
    println!("Ablation 2 — separate TAGE misprediction register (ST TAGE64, SMT)");
    rule(64);
    let pa = profiles::se_profile(profiles::by_name("503.bwaves").expect("profile"));
    let pb = profiles::se_profile(profiles::by_name("505.mcf").expect("profile"));
    let ta = TraceGenerator::new(&pa, seed).generate(n);
    let tb = TraceGenerator::new(&pb, seed ^ 9).generate(n);
    let (ma, mb) = (MemoryProfile::from(&pa), MemoryProfile::from(&pb));
    let cfg = PipelineConfig::table4();
    for separate in [true, false] {
        let st_cfg = StConfig {
            separate_tage_register: separate,
            ..StConfig::with_r(0.002)
        };
        let spec = ModelSpec::new(
            if separate {
                "ST_TAGE64(sep)"
            } else {
                "ST_TAGE64(shared)"
            },
            PredictorSpec::Tage64,
            MapperSpec::SecretToken(st_cfg),
        );
        let mut st = spec.build(seed);
        let r = run_smt(&mut st, [&ta, &tb], &cfg, [&ma, &mb]);
        println!(
            "  separate={separate:<5} dir rate {:.4}, Hmean IPC {:.3}, re-randomizations {}",
            r.direction_rate, r.hmean_ipc, r.rerandomizations
        );
    }
    println!("  (the separate register shields the token from TAGE training noise)");
    println!();

    // --- Ablation 3: remap circuit quality vs software mixer ---
    println!("Ablation 3 — statistical quality: generated circuits vs mul-xor mixer");
    rule(64);
    let set = stbpu_remap::RemapSet::standard();
    for (name, c) in set.circuits() {
        let av = analysis::avalanche(c, 300, 11);
        println!(
            "  {name}: avalanche {:.3} (ideal 0.5), critical path {}T (budget 45T)",
            av.mean_hd,
            c.cost().critical_path
        );
    }
    println!(
        "  mul-xor mixer: avalanche ~0.5 but needs a 64x64 multiplier (~3-5 cycles) — fails C1"
    );
}

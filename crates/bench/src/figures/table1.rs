//! Table I: the collision-based attack surface, executed cell by cell
//! against the baseline BPU and STBPU.

use crate::{rule, Knobs};
use stbpu_attacks::surface::{evaluate_surface, Vector};

fn verdict(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "VULNERABLE",
        Some(false) => "blocked",
        None => "n/a",
    }
}

/// Executes and prints the Table I attack surface.
pub fn run(k: &Knobs) {
    println!(
        "Table I — collision-based attack surface (executed, seed {})",
        k.seed
    );
    rule(118);
    println!(
        "{:<5} {:<14} {:<12} {:<12} {:<70}",
        "struct", "vector", "baseline", "STBPU", "scenario"
    );
    rule(118);
    for c in evaluate_surface(k.seed) {
        let vec = match c.vector {
            Vector::ReuseHome => "reuse/home",
            Vector::ReuseAway => "reuse/away",
            Vector::EvictionHome => "evict/home",
            Vector::EvictionAway => "evict/away",
        };
        println!(
            "{:<5} {:<14} {:<12} {:<12} {:<70}",
            format!("{:?}", c.structure),
            vec,
            verdict(c.baseline_vulnerable),
            verdict(c.stbpu_vulnerable),
            c.description
        );
        println!(
            "{:<5} {:<14} {:<12} {:<12}   note: {}",
            "", "", "", "", c.note
        );
    }
    rule(118);
    println!("expected: baseline vulnerable in all 10 applicable cells; STBPU blocks every");
    println!(
        "address-revealing channel (the RSB occupancy signal survives but leaks no addresses)."
    );
}

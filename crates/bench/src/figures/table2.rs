//! Table II: input/output geometry of the baseline and STBPU mapping
//! functions, plus measured properties of the generated circuits
//! (constraints C1–C3 of Section V).

use crate::{rule, Knobs};
use stbpu_remap::{analysis, RemapSet};

/// Prints the Table II geometry/property table (scale-independent).
pub fn run(_k: &Knobs) {
    println!("Table II — baseline vs STBPU function I/O and measured circuit properties");
    rule(118);
    println!(
        "{:<4} {:<34} {:<26} {:>6} {:>7} {:>8} {:>9} {:>10}",
        "fn", "STBPU input", "output", "crit.T", "total.T", "layers", "avalanche", "unif. CV+"
    );
    rule(118);
    let table = [
        ("R1", "32 ψ ‖ 48 s (80b)", "9 ind + 8 tag + 5 off (22b)"),
        ("R2", "32 ψ ‖ 58 BHB (90b)", "8 tag"),
        ("R3", "32 ψ ‖ 48 s (80b)", "14 ind"),
        ("R4", "32 ψ ‖ 16 GHR ‖ 48 s (96b)", "14 ind"),
        ("Rt", "32 ψ ‖ 48 s ‖ 16 fold (96b)", "13 ind + 12 tag (25b)"),
        ("Rp", "32 ψ ‖ 48 s (80b)", "10 ind"),
    ];
    let set = RemapSet::standard();
    for ((name, c), (label, input, output)) in set.circuits().iter().zip(table) {
        assert_eq!(*name, label);
        let cost = c.cost();
        let av = analysis::avalanche(c, 400, 7);
        let field = c.output_bits().min(10);
        let un = analysis::uniformity(c, 0, field, 32, 9);
        println!(
            "{:<4} {:<34} {:<26} {:>6} {:>7} {:>8} {:>9.3} {:>10.4}",
            name,
            input,
            output,
            cost.critical_path,
            cost.total_transistors,
            cost.layers,
            av.mean_hd,
            un.excess()
        );
    }
    rule(118);
    println!("constraints: C1 critical path <= 45 series transistors (one cycle);");
    println!("C3 avalanche ~0.5 mean Hamming weight per input-bit flip; C2 excess CV ~0.");
    println!("baseline functions consume only 30 truncated address bits; STBPU consumes all 48.");
}

//! Shared helpers and figure implementations for the paper harness.
//!
//! Every figure/table of the paper's evaluation lives in [`figures`] as a
//! library function taking a [`Knobs`] scale configuration; the thin
//! binaries under `src/bin/` and the `stbpu figures` CLI subcommand both
//! dispatch into the same functions, so their outputs are bit-identical
//! for identical knobs. Scale knobs come from environment variables so CI
//! can run quick passes while full runs use paper-scale traces:
//!
//! * `STBPU_BRANCHES` — branches per workload trace (default 120 000),
//! * `STBPU_SEED` — global seed (default 42),
//! * `STBPU_WORKLOAD` / `STBPU_WINDOWS` — `oae_over_time` focus knobs.
//!
//! The compute machinery ([`parallel_map`], [`geomean`], [`mean`]) lives
//! in `stbpu-engine` and is re-exported here for the figure code; this
//! crate only keeps the presentation glue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

pub use stbpu_engine::{geomean, mean, parallel_map};

/// Branches per workload trace for harness runs.
pub fn branches() -> usize {
    std::env::var("STBPU_BRANCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000)
}

/// Global seed for harness runs.
pub fn seed() -> u64 {
    std::env::var("STBPU_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Scale configuration shared by every figure implementation.
///
/// The figure binaries use [`Knobs::from_env`] (preserving the historical
/// `STBPU_*` environment interface); `stbpu figures --quick` uses
/// [`Knobs::quick`], a deterministic scaled-down pass for CI.
#[derive(Clone, Debug)]
pub struct Knobs {
    /// Branches per workload trace.
    pub branches: usize,
    /// Global seed (traces and secret tokens).
    pub seed: u64,
    /// Focus workload for `oae_over_time`.
    pub workload: String,
    /// OAE windows printed by `oae_over_time` (min 2).
    pub windows: usize,
    /// Quick mode: pipeline figures shrink their per-thread floors and
    /// pair counts so a full `figures --all` pass stays CI-sized.
    pub quick: bool,
}

impl Knobs {
    /// Knobs from the `STBPU_*` environment variables (full-scale mode).
    pub fn from_env() -> Self {
        Knobs {
            branches: branches(),
            seed: seed(),
            workload: std::env::var("STBPU_WORKLOAD").unwrap_or_else(|_| "541.leela".to_string()),
            windows: std::env::var("STBPU_WINDOWS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(20),
            quick: false,
        }
    }

    /// Deterministic CI-sized knobs: 8 000 branches, seed 42, quick
    /// pipeline scaling.
    pub fn quick() -> Self {
        Knobs {
            branches: 8_000,
            seed: 42,
            workload: "541.leela".to_string(),
            windows: 20,
            quick: true,
        }
    }

    /// Per-thread branch count for the SMT pipeline figures, with a floor
    /// that keeps full runs meaningful and quick runs fast.
    pub fn smt_branches(&self) -> usize {
        let floor = if self.quick { 2_000 } else { 20_000 };
        (self.branches / 2).max(floor)
    }

    /// Number of SMT pairs averaged by the Figure 6 sweep (paper: 42).
    pub fn fig6_pairs(&self) -> usize {
        if self.quick {
            4
        } else {
            12
        }
    }
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs::from_env()
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_reexport_preserves_order() {
        let out = parallel_map((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn env_knobs_have_defaults() {
        assert!(branches() > 0);
        let _ = seed();
        let k = Knobs::from_env();
        assert!(!k.quick);
        assert!(k.windows >= 2);
    }

    #[test]
    fn quick_knobs_scale_down() {
        let q = Knobs::quick();
        assert!(q.quick);
        assert_eq!(q.branches, 8_000);
        assert!(q.smt_branches() < Knobs::from_env().smt_branches() || branches() < 4_000);
        assert!(q.fig6_pairs() < 12);
    }

    #[test]
    fn figure_registry_is_complete_and_resolvable() {
        assert_eq!(figures::ALL.len(), 10);
        for f in figures::ALL {
            assert!(figures::by_name(f.name).is_some(), "{} resolves", f.name);
            assert!(!f.summary.is_empty());
        }
        assert!(figures::by_name("fig99").is_none());
    }
}

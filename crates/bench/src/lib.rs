//! Shared helpers for the figure/table harness binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index) by declaring scenarios against the
//! `stbpu-engine` API and printing the same rows/series the paper
//! reports. Scale knobs come from environment variables so CI can run
//! quick passes while full runs use paper-scale traces:
//!
//! * `STBPU_BRANCHES` — branches per workload trace (default 120 000),
//! * `STBPU_SEED` — global seed (default 42).
//!
//! The compute machinery ([`parallel_map`], [`geomean`], [`mean`]) lives
//! in `stbpu-engine` and is re-exported here for the binaries; this crate
//! only keeps the presentation glue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stbpu_engine::{geomean, mean, parallel_map};

/// Branches per workload trace for harness runs.
pub fn branches() -> usize {
    std::env::var("STBPU_BRANCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000)
}

/// Global seed for harness runs.
pub fn seed() -> u64 {
    std::env::var("STBPU_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_reexport_preserves_order() {
        let out = parallel_map((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn env_knobs_have_defaults() {
        assert!(branches() > 0);
        let _ = seed();
    }
}

//! Shared helpers for the figure/table harness binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index) and prints the same rows/series the paper
//! reports. Scale knobs come from environment variables so CI can run
//! quick passes while full runs use paper-scale traces:
//!
//! * `STBPU_BRANCHES` — branches per workload trace (default 120 000),
//! * `STBPU_SEED` — global seed (default 42).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;

/// Branches per workload trace for harness runs.
pub fn branches() -> usize {
    std::env::var("STBPU_BRANCHES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000)
}

/// Global seed for harness runs.
pub fn seed() -> u64 {
    std::env::var("STBPU_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Runs `job` over `items` on all available cores, preserving input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, job: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let results = Mutex::new(results);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n.max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = job(&items[i]);
                results.lock().expect("poisoned")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("poisoned")
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn means() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }
}

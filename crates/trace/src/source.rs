//! Streaming event sources — the interface the incremental simulator
//! consumes instead of a fully materialized [`Trace`].
//!
//! The paper's evaluation pushes billions of Intel PT branch events through
//! each protection scheme; materializing such a stream as a
//! `Vec<TraceEvent>` caps run length by RAM. An [`EventSource`] yields
//! events one at a time and declares its metadata up front (name, thread
//! provision, expected branch count), so consumers can size per-thread
//! state and resolve warm-up fractions without a first pass over the data.
//!
//! Three implementations ship with the workspace:
//!
//! * [`TraceSource`] — a view over an in-memory [`Trace`];
//! * [`crate::GeneratorSource`] — generate-as-you-simulate from a
//!   [`crate::TraceGenerator`], O(1) memory for any run length;
//! * [`crate::serialize::TraceReader`] — buffered line-format file reader.
//!
//! # Example
//!
//! ```
//! use stbpu_trace::{EventSource, TraceGenerator, WorkloadProfile};
//!
//! // Streaming: no 10M-branch vector is ever materialized.
//! let mut src = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).into_source(5_000);
//! assert_eq!(src.branch_hint(), Some(5_000));
//! let mut branches = 0u64;
//! while let Some(ev) = src.next_event().unwrap() {
//!     if matches!(ev, stbpu_trace::TraceEvent::Branch { .. }) {
//!         branches += 1;
//!     }
//! }
//! assert_eq!(branches, 5_000);
//! ```

use crate::event::{Trace, TraceEvent};
use std::fmt;

/// Error produced while pulling events out of a source (I/O failures,
/// malformed serialized records, a failing custom source, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceError(pub String);

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event source failed: {}", self.0)
    }
}

impl std::error::Error for SourceError {}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> Self {
        SourceError(e.to_string())
    }
}

/// A streaming supplier of [`TraceEvent`]s plus declared metadata.
///
/// Implementations yield events strictly in order; once `next_event`
/// returns `Ok(None)` the source is exhausted and must keep returning
/// `Ok(None)`.
pub trait EventSource {
    /// Workload name (used in report labels).
    fn name(&self) -> &str;

    /// Declared number of hardware threads the stream occupies, or 0 when
    /// the source cannot know in advance (e.g. a headerless trace file).
    /// Consumers fall back to their own provision for 0.
    fn thread_count(&self) -> usize;

    /// Expected number of branch events, when known — lets consumers
    /// resolve warm-up fractions without a first pass. `None` when the
    /// source cannot know (e.g. a file without a `# branches` header).
    fn branch_hint(&self) -> Option<u64>;

    /// Pulls the next event, `Ok(None)` at end of stream.
    fn next_event(&mut self) -> Result<Option<TraceEvent>, SourceError>;

    /// Pulls up to `max` events into `buf` (cleared first), returning how
    /// many were written; 0 means the stream is exhausted. The default
    /// implementation loops [`EventSource::next_event`]; sources with
    /// bulk access (in-memory traces, generator slices) override it so
    /// batch consumers skip the per-event virtual call. The concatenation
    /// of all batches is exactly the `next_event` stream.
    fn next_batch(&mut self, buf: &mut Vec<TraceEvent>, max: usize) -> Result<usize, SourceError> {
        buf.clear();
        while buf.len() < max {
            match self.next_event()? {
                Some(ev) => buf.push(ev),
                None => break,
            }
        }
        Ok(buf.len())
    }

    /// Skips up to `n` events without yielding them, returning how many
    /// were actually skipped (less than `n` only at end of stream). The
    /// stream then continues exactly where a consumer that pulled and
    /// discarded `n` events would be — the resume primitive for
    /// checkpointed simulation. The default implementation decodes and
    /// discards in batches; seekable sources override it with an O(1)
    /// position jump.
    ///
    /// # Errors
    ///
    /// Returns the first source error hit while skipping.
    fn skip_events(&mut self, n: u64) -> Result<u64, SourceError> {
        let mut buf = Vec::new();
        let mut left = n;
        while left > 0 {
            let chunk = left.min(4_096) as usize;
            let got = self.next_batch(&mut buf, chunk)?;
            if got == 0 {
                break;
            }
            left -= got as u64;
        }
        Ok(n - left)
    }

    /// Drains the source in batches of at most `max` events, invoking
    /// `f` on each non-empty batch — the shared shape of every bulk
    /// consumer (serializers, inspectors, ingest benchmarks). Source
    /// errors convert into the caller's error type; closure errors
    /// propagate unchanged. Unavailable on `dyn EventSource` (it is
    /// generic); batch-pull there via [`EventSource::next_batch`].
    ///
    /// # Errors
    ///
    /// Returns the first source or closure error.
    fn for_each_batch<E, F>(&mut self, max: usize, mut f: F) -> Result<(), E>
    where
        Self: Sized,
        E: From<SourceError>,
        F: FnMut(&[TraceEvent]) -> Result<(), E>,
    {
        let mut buf = Vec::new();
        loop {
            if self.next_batch(&mut buf, max)? == 0 {
                return Ok(());
            }
            f(&buf)?;
        }
    }

    /// Drains the source into a materialized [`Trace`] (name and events
    /// preserved). Mostly useful in tests and for small streams.
    fn collect_trace(&mut self) -> Result<Trace, SourceError> {
        let mut t = Trace::new(self.name());
        while let Some(ev) = self.next_event()? {
            t.push(ev);
        }
        // Re-read the name: a source may refine it mid-stream (a trace
        // file can carry a late `# trace` header).
        t.name = self.name().to_string();
        Ok(t)
    }
}

/// Streaming view over a materialized [`Trace`].
///
/// ```
/// use stbpu_trace::{EventSource, Trace, TraceEvent};
///
/// let mut t = Trace::new("demo");
/// t.push(TraceEvent::Interrupt { tid: 0 });
/// let mut src = t.source();
/// assert_eq!(src.branch_hint(), Some(0));
/// assert!(matches!(src.next_event().unwrap(), Some(TraceEvent::Interrupt { .. })));
/// assert!(src.next_event().unwrap().is_none());
/// ```
pub struct TraceSource<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceSource<'a> {
    /// A source reading `trace` from the beginning.
    pub fn new(trace: &'a Trace) -> Self {
        TraceSource { trace, pos: 0 }
    }
}

impl EventSource for TraceSource<'_> {
    fn name(&self) -> &str {
        &self.trace.name
    }

    fn thread_count(&self) -> usize {
        self.trace.thread_count()
    }

    fn branch_hint(&self) -> Option<u64> {
        Some(self.trace.branch_count() as u64)
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, SourceError> {
        let ev = self.trace.events().get(self.pos).copied();
        self.pos += usize::from(ev.is_some());
        Ok(ev)
    }

    fn next_batch(&mut self, buf: &mut Vec<TraceEvent>, max: usize) -> Result<usize, SourceError> {
        buf.clear();
        let events = self.trace.events();
        let end = (self.pos + max).min(events.len());
        buf.extend_from_slice(&events[self.pos..end]);
        let n = end - self.pos;
        self.pos = end;
        Ok(n)
    }

    fn skip_events(&mut self, n: u64) -> Result<u64, SourceError> {
        let len = self.trace.events().len();
        let want = usize::try_from(n).unwrap_or(usize::MAX);
        let end = self.pos.saturating_add(want).min(len);
        let skipped = (end - self.pos) as u64;
        self.pos = end;
        Ok(skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadProfile};

    #[test]
    fn trace_source_replays_events_in_order() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 9).generate(500);
        let mut src = t.source();
        assert_eq!(src.name(), t.name);
        assert_eq!(src.thread_count(), t.thread_count());
        assert_eq!(src.branch_hint(), Some(500));
        let back = src.collect_trace().unwrap();
        assert_eq!(back.events(), t.events());
        // Exhausted sources stay exhausted.
        assert_eq!(src.next_event().unwrap(), None);
    }

    #[test]
    fn batched_pulls_concatenate_to_the_event_stream() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).generate(700);
        // Odd batch size that does not divide the stream.
        let mut src = t.source();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = src.next_batch(&mut buf, 97).unwrap();
            if n == 0 {
                break;
            }
            assert_eq!(n, buf.len());
            assert!(n <= 97);
            got.extend_from_slice(&buf);
        }
        assert_eq!(got.as_slice(), t.events());
        // Exhausted batches stay exhausted.
        assert_eq!(src.next_batch(&mut buf, 97).unwrap(), 0);

        // Mixed pulls (single + batch) also cover the stream exactly.
        let mut src = t.source();
        let first = src.next_event().unwrap().unwrap();
        src.next_batch(&mut buf, 10_000).unwrap();
        assert_eq!(first, t.events()[0]);
        assert_eq!(buf.as_slice(), &t.events()[1..]);
    }

    #[test]
    fn skip_events_matches_pull_and_discard() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 5).generate(600);
        let total = t.events().len() as u64;

        // Seekable override (TraceSource).
        let mut src = t.source();
        assert_eq!(src.skip_events(123).unwrap(), 123);
        assert_eq!(src.next_event().unwrap(), Some(t.events()[123]));

        // Skipping past the end reports the shortfall and exhausts.
        let mut src = t.source();
        assert_eq!(src.skip_events(total + 50).unwrap(), total);
        assert_eq!(src.next_event().unwrap(), None);

        // Default decode-and-discard path (generator source) lands on the
        // same stream position as pulling.
        let mut a = TraceGenerator::new(&WorkloadProfile::test_profile(), 5).into_source(600);
        let mut b = TraceGenerator::new(&WorkloadProfile::test_profile(), 5).into_source(600);
        a.skip_events(200).unwrap();
        for _ in 0..200 {
            b.next_event().unwrap();
        }
        let ra = a.collect_trace().unwrap();
        let rb = b.collect_trace().unwrap();
        assert_eq!(ra.events(), rb.events());
    }
}

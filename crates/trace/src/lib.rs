//! Branch-trace substrate: trace format, streaming event sources, and
//! synthetic workload generation.
//!
//! The paper evaluates prediction accuracy on Intel Processor Trace
//! captures of a live machine — SPEC CPU 2017 plus user/server applications
//! with naturally occurring context switches, mode switches and interrupts
//! (Section VII-B1). Neither the hardware nor the captures are available,
//! so this crate builds the documented substitute (DESIGN.md §2): a
//! deterministic, profile-driven workload generator that emits the same
//! *kind* of stream.
//!
//! Each named workload (`500.perlbench` … `obsstudio_30s`) has a
//! [`WorkloadProfile`] describing its code footprint, branch mix, pattern
//! complexity, call depth, and OS interaction rates. The
//! [`TraceGenerator`] walks per-entity synthetic programs (functions,
//! loops, periodic conditionals, indirect jumps with context-dependent
//! targets, well-nested calls/returns) and interleaves kernel excursions —
//! producing a stream of [`TraceEvent`]s any `stbpu_bpu::Bpu` model can
//! consume.
//!
//! # Materialized and streaming traces
//!
//! Consumers choose between two representations:
//!
//! * [`Trace`] — a fully materialized event vector with O(1) metadata
//!   (thread/branch counts maintained incrementally);
//! * [`EventSource`] — a streaming iterator of events plus declared
//!   metadata. [`Trace::source`] adapts a materialized trace,
//!   [`TraceGenerator::into_source`] streams generate-as-you-simulate with
//!   O(1) memory (10M+ branch runs never build a vector),
//!   [`serialize::TraceReader`] streams the line-format file format,
//!   [`binfmt::BinTraceReader`] streams the compact binary `.stbt`
//!   format, [`cbp::CbpReader`] streams CBP-style championship `.cbp`
//!   captures, and [`open_trace_file`] picks among them by magic.
//!
//! # Example
//!
//! ```
//! use stbpu_trace::{profiles, EventSource, TraceGenerator};
//!
//! let profile = profiles::by_name("505.mcf").unwrap();
//! let trace = TraceGenerator::new(profile, 42).generate(2_000);
//! assert_eq!(trace.branch_count(), 2_000);
//!
//! // The streaming path yields bit-identical events without materializing.
//! let mut src = TraceGenerator::new(profile, 42).into_source(2_000);
//! let streamed = src.collect_trace().unwrap();
//! assert_eq!(streamed.events(), trace.events());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbv;
pub mod binfmt;
pub mod cbp;
mod event;
mod file;
mod generator;
pub mod profiles;
mod program;
pub mod serialize;
mod source;

pub use bbv::{extract_bbv, BbvProfile, SliceProfile, DEFAULT_SLICE_BRANCHES};
pub use cbp::{read_cbp_trace, write_cbp_trace, CbpError, CbpReader, CbpWriter};
pub use event::{Trace, TraceEvent};
pub use file::{
    detect_format, open_trace_file, open_trace_stream, TraceFileFormat, TraceFileSource,
    TraceFileWriter, TraceStreamSource,
};
pub use generator::{GeneratorSource, TraceGenerator};
pub use profiles::{WorkloadClass, WorkloadProfile};
pub use source::{EventSource, SourceError, TraceSource};

//! Branch-trace substrate: trace format and synthetic workload generation.
//!
//! The paper evaluates prediction accuracy on Intel Processor Trace
//! captures of a live machine — SPEC CPU 2017 plus user/server applications
//! with naturally occurring context switches, mode switches and interrupts
//! (Section VII-B1). Neither the hardware nor the captures are available,
//! so this crate builds the documented substitute (DESIGN.md §2): a
//! deterministic, profile-driven workload generator that emits the same
//! *kind* of stream.
//!
//! Each named workload (`500.perlbench` … `obsstudio_30s`) has a
//! [`WorkloadProfile`] describing its code footprint, branch mix, pattern
//! complexity, call depth, and OS interaction rates. The
//! [`TraceGenerator`] walks per-entity synthetic programs (functions,
//! loops, periodic conditionals, indirect jumps with context-dependent
//! targets, well-nested calls/returns) and interleaves kernel excursions —
//! producing a [`Trace`] of [`TraceEvent`]s any `stbpu_bpu::Bpu` model can
//! consume.
//!
//! # Example
//!
//! ```
//! use stbpu_trace::{profiles, TraceGenerator};
//!
//! let profile = profiles::by_name("505.mcf").unwrap();
//! let trace = TraceGenerator::new(profile, 42).generate(2_000);
//! assert_eq!(trace.branch_count(), 2_000);
//! // Same seed, same trace.
//! let again = TraceGenerator::new(profile, 42).generate(2_000);
//! assert_eq!(trace.events.len(), again.events.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod generator;
pub mod profiles;
mod program;
pub mod serialize;

pub use event::{Trace, TraceEvent};
pub use generator::TraceGenerator;
pub use profiles::{WorkloadClass, WorkloadProfile};

//! Named workload profiles — the knobs behind every synthetic trace.
//!
//! Profiles are calibrated so the *baseline* model's accuracy lands in the
//! range published for each workload class (SPECfp highly predictable,
//! SPECint mixed, pointer-chasing/search workloads hard, servers
//! switch-heavy). What the experiments compare is the *relative* accuracy
//! of protection schemes on identical streams, which these knobs control
//! directly: flush cost scales with `syscalls_per_1k` and
//! `ctx_switches_per_1k`, capacity pressure with `functions ×
//! blocks_per_fn`, and history value with pattern complexity.

/// Broad workload category (used for reporting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WorkloadClass {
    /// SPEC CPU 2017 integer workload.
    SpecInt,
    /// SPEC CPU 2017 floating-point workload.
    SpecFp,
    /// Server application under concurrent load.
    Server,
    /// Interactive desktop application.
    Desktop,
}

/// All knobs of one synthetic workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadProfile {
    /// Workload name as it appears on the figure axes.
    pub name: &'static str,
    /// Category.
    pub class: WorkloadClass,
    /// Number of synthetic functions (code footprint → BTB pressure).
    pub functions: usize,
    /// Branch sites per function.
    pub blocks_per_fn: usize,
    /// Fraction of conditional sites that are fixed-trip loops.
    pub loop_fraction: f64,
    /// Mean loop trip count.
    pub avg_trip: u32,
    /// Fraction of conditional sites carrying long periodic patterns
    /// (learnable only with deep history — differentiates TAGE from the
    /// baseline).
    pub pattern_complexity: f64,
    /// Fraction of purely random conditional outcomes (intrinsic
    /// unpredictability: data-dependent branches).
    pub noise: f64,
    /// Taken bias of plain biased branches.
    pub taken_bias: f64,
    /// Fraction of sites that are indirect jumps (switch statements,
    /// virtual calls).
    pub indirect_fraction: f64,
    /// Targets per indirect site.
    pub indirect_targets: usize,
    /// Fraction of sites that are calls.
    pub call_fraction: f64,
    /// Maximum call-chain depth (> 16 exercises RSB overflow).
    pub call_depth: usize,
    /// Syscall rate per 1000 branches (mode switches).
    pub syscalls_per_1k: f64,
    /// Context-switch rate per 1000 branches.
    pub ctx_switches_per_1k: f64,
    /// Interrupt rate per 1000 branches (timer ticks etc.).
    pub interrupts_per_1k: f64,
    /// Number of distinct user processes in the trace.
    pub processes: usize,
    /// Logical threads the trace occupies (1 or 2).
    pub threads: usize,
    /// Mean non-branch instructions between branches.
    pub gap_mean: f64,
    /// Fraction of gap instructions that are loads (pipeline model).
    pub load_fraction: f64,
    /// L1D miss probability per load (pipeline model).
    pub l1_miss: f64,
    /// L2 miss probability given L1 miss (pipeline model).
    pub l2_miss: f64,
    /// LLC miss probability given L2 miss (pipeline model).
    pub llc_miss: f64,
}

impl WorkloadProfile {
    /// A small, fast profile for unit tests.
    pub fn test_profile() -> Self {
        WorkloadProfile {
            name: "test",
            class: WorkloadClass::SpecInt,
            functions: 12,
            blocks_per_fn: 6,
            loop_fraction: 0.3,
            avg_trip: 12,
            pattern_complexity: 0.2,
            noise: 0.05,
            taken_bias: 0.7,
            indirect_fraction: 0.05,
            indirect_targets: 3,
            call_fraction: 0.2,
            call_depth: 8,
            syscalls_per_1k: 2.0,
            ctx_switches_per_1k: 0.5,
            interrupts_per_1k: 0.3,
            processes: 2,
            threads: 1,
            gap_mean: 6.0,
            load_fraction: 0.3,
            l1_miss: 0.03,
            l2_miss: 0.3,
            llc_miss: 0.2,
        }
    }
}

/// Builds a SPEC-like profile. Helper for the tables below.
#[allow(clippy::too_many_arguments)]
const fn spec(
    name: &'static str,
    class: WorkloadClass,
    functions: usize,
    noise: f64,
    pattern_complexity: f64,
    indirect_fraction: f64,
    gap_mean: f64,
    l1_miss: f64,
) -> WorkloadProfile {
    let (loop_fraction, avg_trip) = match class {
        WorkloadClass::SpecFp => (0.06, 44),
        _ => (0.08, 18),
    };
    WorkloadProfile {
        name,
        class,
        functions,
        blocks_per_fn: 8,
        loop_fraction,
        avg_trip,
        pattern_complexity,
        noise,
        taken_bias: 0.78,
        indirect_fraction,
        indirect_targets: 4,
        call_fraction: 0.18,
        call_depth: 12,
        syscalls_per_1k: 0.6,
        ctx_switches_per_1k: 0.15,
        interrupts_per_1k: 0.25,
        processes: 1,
        threads: 1,
        gap_mean,
        load_fraction: 0.32,
        l1_miss,
        l2_miss: 0.35,
        llc_miss: 0.3,
    }
}

/// Builds a server/desktop profile.
#[allow(clippy::too_many_arguments)]
const fn app(
    name: &'static str,
    class: WorkloadClass,
    functions: usize,
    processes: usize,
    threads: usize,
    syscalls_per_1k: f64,
    ctx_switches_per_1k: f64,
    noise: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name,
        class,
        functions,
        blocks_per_fn: 7,
        loop_fraction: 0.06,
        avg_trip: 12,
        pattern_complexity: 0.10,
        noise,
        taken_bias: 0.72,
        indirect_fraction: 0.09,
        indirect_targets: 6,
        call_fraction: 0.24,
        call_depth: 20,
        syscalls_per_1k,
        ctx_switches_per_1k,
        interrupts_per_1k: 1.2,
        processes,
        threads,
        gap_mean: 5.0,
        load_fraction: 0.35,
        l1_miss: 0.05,
        l2_miss: 0.4,
        llc_miss: 0.35,
    }
}

use WorkloadClass::{Desktop, Server, SpecFp, SpecInt};

/// The 23 SPEC CPU 2017 workload profiles of Figure 3.
pub const SPEC: [WorkloadProfile; 23] = [
    spec("500.perlbench", SpecInt, 160, 0.035, 0.15, 0.12, 5.0, 0.02),
    spec("502.gcc", SpecInt, 320, 0.045, 0.14, 0.10, 4.6, 0.03),
    spec("503.bwaves", SpecFp, 40, 0.004, 0.05, 0.01, 22.0, 0.06),
    spec("505.mcf", SpecInt, 48, 0.085, 0.11, 0.02, 6.5, 0.12),
    spec("507.cactuBSSN", SpecFp, 90, 0.006, 0.04, 0.01, 26.0, 0.07),
    spec("508.namd", SpecFp, 60, 0.006, 0.04, 0.01, 24.0, 0.04),
    spec("510.parest", SpecFp, 110, 0.012, 0.06, 0.03, 15.0, 0.05),
    spec("511.povray", SpecFp, 120, 0.022, 0.09, 0.05, 8.0, 0.02),
    spec("519.lbm", SpecFp, 24, 0.003, 0.025, 0.01, 30.0, 0.10),
    spec("520.omnetpp", SpecInt, 200, 0.055, 0.13, 0.11, 5.5, 0.08),
    spec("521.wrf", SpecFp, 140, 0.008, 0.05, 0.02, 18.0, 0.05),
    spec("523.xalancbmk", SpecInt, 240, 0.040, 0.13, 0.13, 5.2, 0.05),
    spec("525.x264", SpecInt, 80, 0.025, 0.1, 0.04, 9.0, 0.03),
    spec("526.blender", SpecFp, 180, 0.020, 0.08, 0.06, 10.0, 0.04),
    spec("527.cam4", SpecFp, 150, 0.010, 0.06, 0.02, 16.0, 0.05),
    spec("531.deepsjeng", SpecInt, 70, 0.075, 0.17, 0.03, 5.8, 0.04),
    spec("538.imagick", SpecFp, 70, 0.006, 0.04, 0.02, 20.0, 0.03),
    spec("541.leela", SpecInt, 60, 0.090, 0.18, 0.03, 6.0, 0.03),
    spec("544.nab", SpecFp, 50, 0.008, 0.05, 0.01, 19.0, 0.04),
    spec("548.exchange2", SpecInt, 40, 0.015, 0.2, 0.01, 5.0, 0.01),
    spec("549.fotonik3d", SpecFp, 40, 0.004, 0.03, 0.01, 25.0, 0.08),
    spec("554.roms", SpecFp, 90, 0.006, 0.045, 0.01, 21.0, 0.06),
    spec("557.xz", SpecInt, 55, 0.060, 0.12, 0.02, 7.0, 0.06),
];

/// The user/server application profiles of Figure 3.
pub const APPS: [WorkloadProfile; 14] = [
    app("apache2_prefork_c32", Server, 260, 4, 2, 14.0, 3.0, 0.05),
    app("apache2_prefork_c64", Server, 260, 6, 2, 16.0, 4.5, 0.05),
    app("apache2_prefork_c128", Server, 260, 8, 2, 18.0, 6.5, 0.055),
    app("apache2_prefork_c256", Server, 260, 10, 2, 20.0, 9.0, 0.055),
    app("apache2_prefork_c512", Server, 260, 12, 2, 22.0, 12.0, 0.06),
    app("chrome-1jetstream", Desktop, 420, 5, 2, 8.0, 2.2, 0.055),
    app("chrome-1motionmark", Desktop, 400, 5, 2, 9.0, 2.5, 0.05),
    app("chrome-1speedometer", Desktop, 430, 5, 2, 8.5, 2.4, 0.055),
    app("chrome-1je_1mo_1sp", Desktop, 480, 8, 2, 10.0, 3.5, 0.06),
    app("mysql_32con_50s", Server, 300, 5, 2, 12.0, 3.2, 0.05),
    app("mysql_64con_50s", Server, 300, 7, 2, 13.5, 4.5, 0.05),
    app("mysql_128con_50s", Server, 300, 9, 2, 15.0, 6.0, 0.055),
    app("mysql_256con_50s", Server, 300, 11, 2, 17.0, 8.0, 0.055),
    app("obsstudio_30s", Desktop, 340, 4, 2, 7.0, 1.8, 0.045),
];

/// The 18 single-workload names of the Figure 4 gem5 evaluation.
pub const FIG4_WORKLOADS: [&str; 18] = [
    "549.fotonik3d",
    "525.x264",
    "548.exchange2",
    "531.deepsjeng",
    "554.roms",
    "505.mcf",
    "544.nab",
    "527.cam4",
    "508.namd",
    "523.xalancbmk",
    "510.parest",
    "503.bwaves",
    "521.wrf",
    "538.imagick",
    "541.leela",
    "526.blender",
    "557.xz",
    "519.lbm",
];

/// The 31 SMT workload pairs of Figure 5 (short names, resolved against
/// the SPEC table).
pub const FIG5_PAIRS: [(&str, &str); 31] = [
    ("503.bwaves", "549.fotonik3d"),
    ("503.bwaves", "507.cactuBSSN"),
    ("503.bwaves", "541.leela"),
    ("503.bwaves", "527.cam4"),
    ("548.exchange2", "544.nab"),
    ("503.bwaves", "521.wrf"),
    ("541.leela", "508.namd"),
    ("548.exchange2", "505.mcf"),
    ("503.bwaves", "531.deepsjeng"),
    ("548.exchange2", "549.fotonik3d"),
    ("531.deepsjeng", "519.lbm"),
    ("503.bwaves", "508.namd"),
    ("503.bwaves", "519.lbm"),
    ("541.leela", "505.mcf"),
    ("519.lbm", "557.xz"),
    ("549.fotonik3d", "505.mcf"),
    ("519.lbm", "508.namd"),
    ("519.lbm", "505.mcf"),
    ("548.exchange2", "541.leela"),
    ("549.fotonik3d", "519.lbm"),
    ("527.cam4", "505.mcf"),
    ("544.nab", "557.xz"),
    ("548.exchange2", "508.namd"),
    ("503.bwaves", "554.roms"),
    ("505.mcf", "557.xz"),
    ("548.exchange2", "519.lbm"),
    ("503.bwaves", "511.povray"),
    ("549.fotonik3d", "541.leela"),
    ("549.fotonik3d", "508.namd"),
    ("531.deepsjeng", "557.xz"),
    ("503.bwaves", "548.exchange2"),
];

/// Looks up a profile by name across the SPEC and application tables.
pub fn by_name(name: &str) -> Option<&'static WorkloadProfile> {
    SPEC.iter().chain(APPS.iter()).find(|p| p.name == name)
}

/// Converts a profile into its gem5 syscall-emulation (SE) mode equivalent:
/// a single user process with no OS activity — how the paper's Figure 4/5/6
/// pipeline experiments run (Section VII-B2).
pub fn se_profile(p: &WorkloadProfile) -> WorkloadProfile {
    WorkloadProfile {
        syscalls_per_1k: 0.0,
        ctx_switches_per_1k: 0.0,
        interrupts_per_1k: 0.0,
        processes: 1,
        threads: 1,
        ..*p
    }
}

/// All Figure 3 workloads in the paper's axis order (SPEC then apps).
pub fn fig3_workloads() -> Vec<&'static WorkloadProfile> {
    SPEC.iter().chain(APPS.iter()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_unique() {
        let mut names: Vec<&str> = fig3_workloads().iter().map(|p| p.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 37);
    }

    #[test]
    fn fig4_and_fig5_names_resolve() {
        for n in FIG4_WORKLOADS {
            assert!(by_name(n).is_some(), "missing profile {n}");
        }
        for (a, b) in FIG5_PAIRS {
            assert!(by_name(a).is_some(), "missing profile {a}");
            assert!(by_name(b).is_some(), "missing profile {b}");
        }
    }

    #[test]
    fn profiles_are_sane() {
        for p in fig3_workloads() {
            assert!(p.noise >= 0.0 && p.noise < 0.5, "{}: noise", p.name);
            assert!(p.taken_bias > 0.5 && p.taken_bias < 1.0, "{}: bias", p.name);
            assert!(p.functions >= 8, "{}: footprint", p.name);
            assert!(
                p.processes >= 1 && p.threads >= 1 && p.threads <= 2,
                "{}",
                p.name
            );
            assert!(
                p.indirect_fraction + p.call_fraction < 0.6,
                "{}: branch mix leaves room for conditionals",
                p.name
            );
        }
    }

    #[test]
    fn servers_switch_more_than_spec() {
        let spec_avg: f64 =
            SPEC.iter().map(|p| p.ctx_switches_per_1k).sum::<f64>() / SPEC.len() as f64;
        let app_avg: f64 =
            APPS.iter().map(|p| p.ctx_switches_per_1k).sum::<f64>() / APPS.len() as f64;
        assert!(app_avg > 5.0 * spec_avg);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("505.mcf").unwrap().name, "505.mcf");
        assert!(by_name("nonexistent").is_none());
    }
}

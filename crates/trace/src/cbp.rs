//! CBP-style championship trace format (`.cbp`) — the external-trace
//! frontend.
//!
//! Championship Branch Prediction tooling distributes captures as flat
//! streams of fixed-size branch records (pc, type, outcome, target) with
//! no side events — no context switches, no mode switches, one hardware
//! thread. This module implements a versioned variant of that layout so
//! real captures can be converted into the simulator's native formats
//! (`stbpu trace convert --from cbp`) and simulated directly
//! (`--trace-file capture.cbp` — [`crate::open_trace_file`] sniffs the
//! magic).
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! offset size field
//! 0      4    magic "CBPT"
//! 4      2    format version (= 1)
//! 6      2    flags (bit 0: branch count present; other bits reserved, 0)
//! 8      8    declared branch count (0 unless flags bit 0)
//! ```
//!
//! Records are fixed 18-byte structures until EOF:
//!
//! ```text
//! offset size field
//! 0      8    branch pc (must fit the 48-bit virtual address space)
//! 8      1    branch type (0 jcc, 1 jmp, 2 jmp*, 3 call, 4 call*, 5 ret)
//! 9      1    taken (0 or 1; must be 1 for types 1–5)
//! 10     8    branch target (48-bit bound; fall-through when not taken)
//! ```
//!
//! Decoding is total: truncation and corruption produce a positioned
//! [`CbpError`] (absolute byte offset plus 1-based record index), never a
//! panic — the same contract [`crate::binfmt`] makes for `.stbt`. Readers
//! reject unknown versions, unknown header flags, branch types above 5,
//! taken flags above 1, not-taken unconditional branches, and addresses
//! wider than the implemented 48 bits, so corruption fails loudly instead
//! of decoding garbage.
//!
//! # Round trips
//!
//! Every field a `.cbp` record carries survives conversion exactly: the
//! decoder emits [`TraceEvent::Branch`] events on thread 0 with the
//! default instruction length (4) and a zero gap, `.stbt` preserves all
//! of that, and [`CbpWriter`] re-emits the original 18 bytes — so
//! `cbp → .stbt → cbp` reproduces any valid `.cbp` file byte-for-byte.
//! CI keeps a golden `ci/golden.cbp` fixture as the format-stability
//! gate. The reverse direction is lossy by design: thread ids, non-branch
//! events, instruction lengths and gaps have no `.cbp` representation
//! (the writer discards them).
//!
//! ```
//! use stbpu_trace::cbp::{read_cbp_trace, write_cbp_trace};
//! use stbpu_trace::{TraceGenerator, WorkloadProfile};
//!
//! let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).generate(200);
//! let mut buf = Vec::new();
//! write_cbp_trace(&t, &mut buf).unwrap();
//! let back = read_cbp_trace(buf.as_slice()).unwrap();
//! assert_eq!(back.branch_count(), t.branch_count());
//! ```

use crate::event::{Trace, TraceEvent};
use crate::source::{EventSource, SourceError};
use stbpu_bpu::{BranchKind, BranchRecord, VirtAddr, VA_BITS, VA_MASK};
use std::fmt;
use std::io::{Read, Write};

/// The four-byte file magic leading every `.cbp` file.
pub const MAGIC: [u8; 4] = *b"CBPT";

/// The format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Header flag: the declared branch count field is meaningful.
const FLAG_BRANCH_COUNT: u16 = 1;
/// All flag bits a version-1 reader understands.
const KNOWN_FLAGS: u16 = FLAG_BRANCH_COUNT;

/// Fixed header size.
const HEADER_LEN: usize = 16;

/// Fixed record size: pc (8) + type (1) + taken (1) + target (8).
const RECORD_LEN: usize = 18;

/// Instruction length reported for decoded records — `.cbp` does not
/// carry one, and synthetic traces use 4 throughout.
const DEFAULT_ILEN: u8 = 4;

/// The workload name a `.cbp` stream reports — the format has no name
/// field; converters and simulate reports see this constant.
pub const CBP_TRACE_NAME: &str = "cbp";

/// Branch type codes (record byte 8).
const TY_COND: u8 = 0;
const TY_JUMP: u8 = 1;
const TY_IND_JUMP: u8 = 2;
const TY_CALL: u8 = 3;
const TY_IND_CALL: u8 = 4;
const TY_RET: u8 = 5;

/// Error decoding a `.cbp` trace: carries the absolute byte offset and
/// the 1-based index of the record being decoded (0 for header errors) —
/// the `.cbp` counterpart of [`crate::binfmt::BinTraceError`].
#[derive(Debug)]
pub struct CbpError {
    offset: u64,
    record: u64,
    msg: String,
}

impl CbpError {
    /// Absolute byte offset the failing header field or record starts at.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// 1-based index of the record being decoded; 0 while parsing the
    /// header.
    pub fn record(&self) -> u64 {
        self.record
    }

    /// The reason, without the position prefix.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for CbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.record == 0 {
            write!(
                f,
                "cbp trace header error at byte {}: {}",
                self.offset, self.msg
            )
        } else {
            write!(
                f,
                "cbp trace error at byte {} (record {}): {}",
                self.offset, self.record, self.msg
            )
        }
    }
}

impl std::error::Error for CbpError {}

impl From<CbpError> for SourceError {
    fn from(e: CbpError) -> Self {
        SourceError(e.to_string())
    }
}

/// Little-endian u64 from the first eight bytes of `b` (shorter slices
/// zero-extend; callers always pass at least eight).
fn le_u64(b: &[u8]) -> u64 {
    b.iter()
        .take(8)
        .enumerate()
        .fold(0u64, |v, (i, &x)| v | (x as u64) << (8 * i as u32))
}

/// Maps a record type code to the simulator's branch kind.
fn kind_from_type(ty: u8) -> Option<BranchKind> {
    match ty {
        TY_COND => Some(BranchKind::Conditional),
        TY_JUMP => Some(BranchKind::DirectJump),
        TY_IND_JUMP => Some(BranchKind::IndirectJump),
        TY_CALL => Some(BranchKind::DirectCall),
        TY_IND_CALL => Some(BranchKind::IndirectCall),
        TY_RET => Some(BranchKind::Return),
        _ => None,
    }
}

/// Maps a branch kind back to its record type code — the inverse of
/// [`kind_from_type`] (round trips exactly).
fn type_from_kind(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => TY_COND,
        BranchKind::DirectJump => TY_JUMP,
        BranchKind::IndirectJump => TY_IND_JUMP,
        BranchKind::DirectCall => TY_CALL,
        BranchKind::IndirectCall => TY_IND_CALL,
        BranchKind::Return => TY_RET,
    }
}

/// Decodes one fixed-size record (the caller passes at least
/// [`RECORD_LEN`] bytes). Validation is total — every malformed byte
/// pattern maps to a message, never a panic.
fn decode_record(rec: &[u8]) -> Result<TraceEvent, String> {
    let pc = le_u64(&rec[0..8]);
    let ty = rec.get(8).copied().unwrap_or(0);
    let taken = rec.get(9).copied().unwrap_or(0);
    let target = le_u64(&rec[10..18]);
    let kind = kind_from_type(ty)
        .ok_or_else(|| format!("bad branch type {ty} (valid types are 0..=5)"))?;
    if taken > 1 {
        return Err(format!("bad taken flag {taken} (must be 0 or 1)"));
    }
    if ty != TY_COND && taken == 0 {
        return Err(format!(
            "unconditional branch (type {ty}) recorded as not taken"
        ));
    }
    if pc > VA_MASK {
        return Err(format!(
            "pc {pc:#x} exceeds the {VA_BITS}-bit virtual address space"
        ));
    }
    if target > VA_MASK {
        return Err(format!(
            "target {target:#x} exceeds the {VA_BITS}-bit virtual address space"
        ));
    }
    Ok(TraceEvent::Branch {
        tid: 0,
        rec: BranchRecord {
            pc: VirtAddr::new(pc),
            kind,
            taken: taken == 1,
            target: VirtAddr::new(target),
            ilen: DEFAULT_ILEN,
            gap: 0,
        },
    })
}

/// Streaming `.cbp` reader: an [`EventSource`] decoding fixed-size
/// records out of an internal 256 KiB buffer, so any `Read` (a bare
/// `File` included) streams in O(1) memory. The
/// [`EventSource::next_batch`] override decodes straight out of the
/// buffer — `.cbp` ingest rides the same batched hot path as `.stbt`.
///
/// ```
/// use stbpu_trace::cbp::{CbpReader, CbpWriter};
/// use stbpu_trace::{EventSource, TraceGenerator, WorkloadProfile};
///
/// let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(100);
/// let mut buf = Vec::new();
/// let mut w = CbpWriter::new(&mut buf);
/// w.header(Some(t.branch_count() as u64)).unwrap();
/// for ev in t.events() {
///     w.event(ev).unwrap();
/// }
/// let mut src = CbpReader::new(buf.as_slice()).unwrap();
/// assert_eq!(src.branch_hint(), Some(100));
/// assert_eq!(src.collect_trace().unwrap().branch_count(), 100);
/// ```
pub struct CbpReader<R: Read> {
    r: R,
    buf: Vec<u8>,
    pos: usize,
    filled: usize,
    /// Absolute file offset of `buf[0]`.
    base: u64,
    eof: bool,
    done: bool,
    branch_hint: Option<u64>,
    /// The version parsed from the stream header.
    version: u16,
    /// Records decoded so far (error positions are 1-based from this).
    records: u64,
}

impl<R: Read> CbpReader<R> {
    /// Wraps `reader`, eagerly parsing the header so declared metadata is
    /// available before the first event.
    ///
    /// # Errors
    ///
    /// Returns [`CbpError`] on a bad magic, an unsupported version,
    /// unknown flag bits, or a truncated header.
    pub fn new(reader: R) -> Result<Self, CbpError> {
        let mut tr = CbpReader {
            r: reader,
            buf: vec![0; 256 * 1024],
            pos: 0,
            filled: 0,
            base: 0,
            eof: false,
            done: false,
            branch_hint: None,
            version: 0,
            records: 0,
        };
        tr.refill()?;
        tr.parse_header()?;
        Ok(tr)
    }

    /// Parses the leading header out of the freshly filled buffer (the
    /// buffer is far larger than the fixed header, so no refill is
    /// needed).
    fn parse_header(&mut self) -> Result<(), CbpError> {
        let err = |offset: u64, msg: String| CbpError {
            offset,
            record: 0,
            msg,
        };
        let head = &self.buf[..self.filled];
        if head.len() < 4 || head[0..4] != MAGIC {
            let found: Vec<u8> = head.iter().take(4).copied().collect();
            return Err(err(
                0,
                format!(
                    "bad magic: expected {:?} (\"CBPT\"), found {:?}{}",
                    MAGIC,
                    found,
                    if head.len() < 4 {
                        " (file shorter than the magic)"
                    } else {
                        ""
                    }
                ),
            ));
        }
        if head.len() < HEADER_LEN {
            return Err(err(
                head.len() as u64,
                format!("truncated header: {} bytes, need {HEADER_LEN}", head.len()),
            ));
        }
        let version = le_u64(&head[4..6]) as u16;
        self.version = version;
        if version != VERSION {
            return Err(err(
                4,
                format!(
                    "unsupported format version {version} (this build reads version {VERSION})"
                ),
            ));
        }
        let flags = le_u64(&head[6..8]) as u16;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(err(
                6,
                format!("unknown header flags {:#06x}", flags & !KNOWN_FLAGS),
            ));
        }
        let count = le_u64(&head[8..16]);
        self.branch_hint = (flags & FLAG_BRANCH_COUNT != 0).then_some(count);
        self.pos = HEADER_LEN;
        Ok(())
    }

    /// The on-disk format version parsed from the stream's header.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Slides unread bytes to the buffer front and reads until the buffer
    /// is full or the underlying reader reports EOF.
    fn refill(&mut self) -> Result<(), CbpError> {
        self.buf.copy_within(self.pos..self.filled, 0);
        self.base += self.pos as u64;
        self.filled -= self.pos;
        self.pos = 0;
        while self.filled < self.buf.len() && !self.eof {
            let n = self
                .r
                .read(&mut self.buf[self.filled..])
                .map_err(|e| CbpError {
                    offset: self.base + self.filled as u64,
                    record: self.records + 1,
                    msg: format!("I/O error: {e}"),
                })?;
            if n == 0 {
                self.eof = true;
            }
            self.filled += n;
        }
        Ok(())
    }

    /// Builds the positioned error for a failed decode at buffer index
    /// `start`.
    fn record_error(&self, start: usize, msg: String) -> CbpError {
        CbpError {
            offset: self.base + start as u64,
            record: self.records + 1,
            msg,
        }
    }

    /// Pulls the next event (typed error, used by [`read_cbp_trace`]).
    ///
    /// # Errors
    ///
    /// Returns a positioned [`CbpError`] for a truncated or malformed
    /// record — decoding is total, arbitrary input never panics.
    pub fn next_record(&mut self) -> Result<Option<TraceEvent>, CbpError> {
        if self.done {
            return Ok(None);
        }
        if self.filled - self.pos < RECORD_LEN && !self.eof {
            self.refill()?;
        }
        if self.pos == self.filled {
            self.done = true;
            return Ok(None);
        }
        let remaining = self.filled - self.pos;
        if remaining < RECORD_LEN {
            return Err(self.record_error(
                self.pos,
                format!(
                    "truncated record: {remaining} trailing bytes, a record needs {RECORD_LEN}"
                ),
            ));
        }
        let start = self.pos;
        match decode_record(&self.buf[start..start + RECORD_LEN]) {
            Ok(ev) => {
                self.pos += RECORD_LEN;
                self.records += 1;
                Ok(Some(ev))
            }
            Err(msg) => Err(self.record_error(start, msg)),
        }
    }
}

impl<R: Read> EventSource for CbpReader<R> {
    fn name(&self) -> &str {
        CBP_TRACE_NAME
    }

    fn thread_count(&self) -> usize {
        1
    }

    fn branch_hint(&self) -> Option<u64> {
        self.branch_hint
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, SourceError> {
        self.next_record().map_err(SourceError::from)
    }

    /// The batched fast path: decodes fixed-size records straight out of
    /// the internal byte buffer in a tight loop, hoisting the refill/EOF
    /// checks out of the per-record work.
    fn next_batch(&mut self, buf: &mut Vec<TraceEvent>, max: usize) -> Result<usize, SourceError> {
        buf.clear();
        while buf.len() < max {
            if self.done {
                break;
            }
            if self.filled - self.pos < RECORD_LEN && !self.eof {
                self.refill()?;
            }
            if self.pos == self.filled {
                self.done = true;
                break;
            }
            let remaining = self.filled - self.pos;
            if remaining < RECORD_LEN {
                return Err(self
                    .record_error(
                        self.pos,
                        format!(
                            "truncated record: {remaining} trailing bytes, a record \
                             needs {RECORD_LEN}"
                        ),
                    )
                    .into());
            }
            // Every record starting at or before `soft_end` is fully
            // buffered, so this loop needs no per-record bounds checks.
            let soft_end = self.filled - RECORD_LEN;
            let mut i = self.pos;
            while buf.len() < max && i <= soft_end {
                match decode_record(&self.buf[i..i + RECORD_LEN]) {
                    Ok(ev) => {
                        buf.push(ev);
                        self.records += 1;
                        i += RECORD_LEN;
                    }
                    Err(msg) => {
                        self.pos = i;
                        return Err(self.record_error(i, msg).into());
                    }
                }
            }
            self.pos = i;
        }
        Ok(buf.len())
    }
}

/// Streaming `.cbp` writer. The `header`/`event`/`flush` surface mirrors
/// [`crate::binfmt::BinTraceWriter`] so [`crate::TraceFileWriter`] can
/// treat all three on-disk formats uniformly; the differences are
/// format-inherent — the header carries no name or thread count, and
/// non-branch events are silently discarded (`.cbp` has no representation
/// for them, and thread ids collapse onto the format's single thread).
pub struct CbpWriter<W: Write> {
    w: W,
}

impl<W: Write> CbpWriter<W> {
    /// Wraps `w` (pass a `BufWriter` for unbuffered sinks).
    pub fn new(w: W) -> Self {
        CbpWriter { w }
    }

    /// Writes the file header; `branches` is the declared branch count
    /// (omit when streaming from a hint-less source).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn header(&mut self, branches: Option<u64>) -> std::io::Result<()> {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&MAGIC);
        h[4..6].copy_from_slice(&VERSION.to_le_bytes());
        let flags = if branches.is_some() {
            FLAG_BRANCH_COUNT
        } else {
            0
        };
        h[6..8].copy_from_slice(&flags.to_le_bytes());
        h[8..16].copy_from_slice(&branches.unwrap_or(0).to_le_bytes());
        self.w.write_all(&h)
    }

    /// Encodes and writes one event. Branch events become one fixed-size
    /// record (the thread id, instruction length and gap are discarded —
    /// the format has no field for them); all other event kinds are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a not-taken unconditional branch is
    /// rejected as invalid input — the format cannot represent it, and a
    /// record the reader would refuse to decode must not be written.
    pub fn event(&mut self, ev: &TraceEvent) -> std::io::Result<()> {
        let TraceEvent::Branch { rec, .. } = *ev else {
            return Ok(());
        };
        if !rec.kind.is_conditional() && !rec.taken {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cbp format cannot represent a not-taken unconditional branch",
            ));
        }
        let mut out = [0u8; RECORD_LEN];
        out[0..8].copy_from_slice(&rec.pc.raw().to_le_bytes());
        out[8..9].copy_from_slice(&[type_from_kind(rec.kind)]);
        out[9..10].copy_from_slice(&[u8::from(rec.taken)]);
        out[10..18].copy_from_slice(&rec.target.raw().to_le_bytes());
        self.w.write_all(&out)
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }

    /// Unwraps the underlying writer (does not flush).
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Writes `trace`'s branch events as a `.cbp` stream, declaring the exact
/// branch count — the `.cbp` counterpart of
/// [`crate::binfmt::write_bin_trace`].
///
/// # Errors
///
/// Propagates I/O errors from the writer (including the invalid-input
/// rejection of not-taken unconditional branches).
pub fn write_cbp_trace<W: Write>(trace: &Trace, w: W) -> std::io::Result<()> {
    let mut cw = CbpWriter::new(w);
    cw.header(Some(trace.branch_count() as u64))?;
    for ev in trace.events() {
        cw.event(ev)?;
    }
    Ok(())
}

/// Reads a complete `.cbp` stream into a materialized [`Trace`] — the
/// `.cbp` counterpart of [`crate::binfmt::read_bin_trace`].
///
/// # Errors
///
/// Returns the positioned [`CbpError`] of the first malformed byte.
pub fn read_cbp_trace<R: Read>(r: R) -> Result<Trace, CbpError> {
    let mut tr = CbpReader::new(r)?;
    let mut t = Trace::new(CBP_TRACE_NAME);
    while let Some(ev) = tr.next_record()? {
        t.push(ev);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binfmt::{read_bin_trace, write_bin_trace};
    use crate::{TraceGenerator, WorkloadProfile};

    /// A small, valid `.cbp` byte stream built by hand.
    fn sample_bytes() -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = CbpWriter::new(&mut buf);
        w.header(Some(3)).unwrap();
        for (pc, ty, taken, target) in [
            (0x40_0000u64, TY_COND, 1u8, 0x40_0100u64),
            (0x40_0100, TY_IND_CALL, 1, 0x41_0000),
            (0x41_0040, TY_RET, 1, 0x40_0104),
        ] {
            let mut rec = [0u8; RECORD_LEN];
            rec[0..8].copy_from_slice(&pc.to_le_bytes());
            rec[8] = ty;
            rec[9] = taken;
            rec[10..18].copy_from_slice(&target.to_le_bytes());
            w.w.extend_from_slice(&rec);
        }
        buf
    }

    #[test]
    fn hand_built_stream_decodes() {
        let t = read_cbp_trace(sample_bytes().as_slice()).unwrap();
        assert_eq!(t.branch_count(), 3);
        assert_eq!(t.thread_count(), 1);
        let recs: Vec<_> = t.branches().map(|(_, r)| *r).collect();
        assert_eq!(recs[0].kind, BranchKind::Conditional);
        assert!(recs[0].taken);
        assert_eq!(recs[0].pc.raw(), 0x40_0000);
        assert_eq!(recs[1].kind, BranchKind::IndirectCall);
        assert_eq!(recs[2].kind, BranchKind::Return);
        assert_eq!(recs[2].target.raw(), 0x40_0104);
    }

    #[test]
    fn writer_reader_round_trip_preserves_branches() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 7).generate(500);
        let mut buf = Vec::new();
        write_cbp_trace(&t, &mut buf).unwrap();
        let mut src = CbpReader::new(buf.as_slice()).unwrap();
        assert_eq!(src.branch_hint(), Some(500));
        assert_eq!(src.version(), VERSION);
        let back = src.collect_trace().unwrap();
        assert_eq!(back.branch_count(), 500);
        // Branch identity fields survive; tids collapse to 0.
        for ((_, a), (_, b)) in t.branches().zip(back.branches()) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.taken, b.taken);
            assert_eq!(a.target, b.target);
        }
    }

    #[test]
    fn cbp_stbt_cbp_round_trip_is_byte_identical() {
        let bytes = {
            let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 11).generate(400);
            let mut buf = Vec::new();
            write_cbp_trace(&t, &mut buf).unwrap();
            buf
        };
        let decoded = read_cbp_trace(bytes.as_slice()).unwrap();
        let mut stbt = Vec::new();
        write_bin_trace(&decoded, &mut stbt).unwrap();
        let back = read_bin_trace(stbt.as_slice()).unwrap();
        let mut again = Vec::new();
        write_cbp_trace(&back, &mut again).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn batched_pulls_match_single_pulls() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 5).generate(700);
        let mut bytes = Vec::new();
        write_cbp_trace(&t, &mut bytes).unwrap();
        let singles = read_cbp_trace(bytes.as_slice()).unwrap();
        let mut src = CbpReader::new(bytes.as_slice()).unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = src.next_batch(&mut buf, 97).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf);
        }
        assert_eq!(got.as_slice(), singles.events());
        assert_eq!(src.next_batch(&mut buf, 97).unwrap(), 0);
    }

    #[test]
    fn bad_magic_and_truncated_header_are_positioned() {
        let e = CbpReader::new(&b"STBT"[..]).map(|_| ()).unwrap_err();
        assert_eq!(e.offset(), 0);
        assert_eq!(e.record(), 0);
        assert!(e.to_string().contains("bad magic"), "{e}");

        let e = CbpReader::new(&b"CB"[..]).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("shorter than the magic"), "{e}");

        let e = CbpReader::new(&b"CBPT\x01\x00"[..])
            .map(|_| ())
            .unwrap_err();
        assert_eq!(e.offset(), 6);
        assert!(e.to_string().contains("truncated header"), "{e}");

        let empty = CbpReader::new(&[][..]).map(|_| ()).unwrap_err();
        assert!(empty.to_string().contains("bad magic"), "{empty}");
    }

    #[test]
    fn version_and_flag_drift_are_rejected() {
        let mut bytes = sample_bytes();
        bytes[4] = 9;
        let e = CbpReader::new(bytes.as_slice()).map(|_| ()).unwrap_err();
        assert_eq!(e.offset(), 4);
        assert!(e.to_string().contains("version 9"), "{e}");
        assert!(e.to_string().contains("version 1"), "{e}");

        let mut bytes = sample_bytes();
        bytes[7] = 0x80;
        let e = CbpReader::new(bytes.as_slice()).map(|_| ()).unwrap_err();
        assert_eq!(e.offset(), 6);
        assert!(e.to_string().contains("unknown header flags"), "{e}");
    }

    #[test]
    fn truncation_and_corruption_produce_positioned_errors() {
        let bytes = sample_bytes();

        // Cut mid-record: error names the offset and the record index.
        let cut = &bytes[..HEADER_LEN + RECORD_LEN + 7];
        let mut src = CbpReader::new(cut).unwrap();
        assert!(src.next_record().unwrap().is_some());
        let e = src.next_record().map(|_| ()).unwrap_err();
        assert_eq!(e.offset(), (HEADER_LEN + RECORD_LEN) as u64);
        assert_eq!(e.record(), 2);
        assert!(e.to_string().contains("truncated record"), "{e}");

        // Bad branch type.
        let mut b = bytes.clone();
        b[HEADER_LEN + 8] = 6;
        let e = read_cbp_trace(b.as_slice()).map(|_| ()).unwrap_err();
        assert_eq!(e.offset(), HEADER_LEN as u64);
        assert_eq!(e.record(), 1);
        assert!(e.to_string().contains("bad branch type 6"), "{e}");

        // Bad taken flag.
        let mut b = bytes.clone();
        b[HEADER_LEN + 9] = 2;
        let e = read_cbp_trace(b.as_slice()).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("bad taken flag 2"), "{e}");

        // Not-taken unconditional.
        let mut b = bytes.clone();
        b[HEADER_LEN + RECORD_LEN + 9] = 0;
        let e = read_cbp_trace(b.as_slice()).map(|_| ()).unwrap_err();
        assert_eq!(e.record(), 2);
        assert!(e.to_string().contains("not taken"), "{e}");

        // Address beyond 48 bits.
        let mut b = bytes;
        b[HEADER_LEN + 7] = 0xff;
        let e = read_cbp_trace(b.as_slice()).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("48-bit"), "{e}");
    }

    #[test]
    fn writer_rejects_unrepresentable_events() {
        let mut w = CbpWriter::new(Vec::new());
        w.header(None).unwrap();
        let ev = TraceEvent::Branch {
            tid: 0,
            rec: BranchRecord {
                pc: VirtAddr::new(0x1000),
                kind: BranchKind::DirectJump,
                taken: false,
                target: VirtAddr::new(0x1004),
                ilen: 4,
                gap: 0,
            },
        };
        let e = w.event(&ev).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput);

        // Non-branch events are skipped, not errors.
        w.event(&TraceEvent::Interrupt { tid: 3 }).unwrap();
        assert_eq!(w.into_inner().len(), HEADER_LEN);
    }

    #[test]
    fn hintless_header_reports_no_branch_hint() {
        let mut buf = Vec::new();
        CbpWriter::new(&mut buf).header(None).unwrap();
        let src = CbpReader::new(buf.as_slice()).unwrap();
        assert_eq!(src.branch_hint(), None);
        assert_eq!(src.thread_count(), 1);
        assert_eq!(src.name(), CBP_TRACE_NAME);
    }

    #[test]
    fn empty_record_section_is_an_empty_trace() {
        let mut buf = Vec::new();
        CbpWriter::new(&mut buf).header(Some(0)).unwrap();
        let t = read_cbp_trace(buf.as_slice()).unwrap();
        assert!(t.is_empty());
    }
}

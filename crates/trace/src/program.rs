//! Synthetic program model: functions of branch sites walked by a
//! deterministic abstract machine.
//!
//! Programs are DAGs of functions (callees always have higher ids, so call
//! chains terminate) whose bodies are sequences of *sites*: conditionals
//! with loop/periodic/Bernoulli behaviour, direct and indirect calls, and
//! indirect jumps with rotating target sets. The walker yields one
//! [`BranchRecord`] per step with perfectly nested call/return pairs —
//! matching what Intel PT would deliver for real code.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stbpu_bpu::{BranchKind, BranchRecord};

/// Behaviour of one conditional site.
#[derive(Clone, Debug)]
pub(crate) enum CondBehavior {
    /// Fixed-trip loop back edge: taken `trip − 1` times, then exits.
    Loop { trip: u32 },
    /// Periodic outcome pattern (bit `i` of `pattern` = outcome at phase
    /// `i mod len`).
    Periodic { pattern: u64, len: u8 },
    /// Independent biased coin.
    Bernoulli { p_taken: f64 },
}

#[derive(Clone, Debug)]
pub(crate) enum SiteKind {
    Cond {
        behavior: CondBehavior,
        taken_target: u64,
    },
    Call {
        callee: usize,
    },
    IndirectCall {
        callees: Vec<usize>,
    },
    IndirectJump {
        targets: Vec<u64>,
    },
}

#[derive(Clone, Debug)]
pub(crate) struct Site {
    pub pc: u64,
    pub kind: SiteKind,
}

#[derive(Clone, Debug)]
pub(crate) struct Function {
    pub entry: u64,
    pub exit_pc: u64,
    pub sites: Vec<Site>,
}

/// Knobs consumed by [`Program::build`] (a subset of the workload profile).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ProgramShape {
    pub functions: usize,
    pub blocks_per_fn: usize,
    pub loop_fraction: f64,
    pub avg_trip: u32,
    pub pattern_complexity: f64,
    pub taken_bias: f64,
    pub indirect_fraction: f64,
    pub indirect_targets: usize,
    pub call_fraction: f64,
    /// Drives the share of hard (weakly biased) branches — derived from
    /// the profile's intrinsic-noise knob.
    pub hardness: f64,
}

#[derive(Clone, Debug)]
pub(crate) struct Program {
    pub functions: Vec<Function>,
    pub blocks_per_fn: usize,
    /// Dispatcher call sites (the "main loop" of the entity).
    pub main_pcs: Vec<u64>,
}

impl Program {
    /// Builds a synthetic program at `base` with the given shape.
    ///
    /// Functions are packed back-to-back with irregular sizes, like a real
    /// linker lays them out — a page-aligned layout would make every
    /// function alias in the BTB's low index bits.
    pub fn build(shape: &ProgramShape, base: u64, rng: &mut StdRng) -> Program {
        let nf = shape.functions.max(2);
        let mut functions = Vec::with_capacity(nf);
        let min_size = 0x48 * (shape.blocks_per_fn as u64 + 1) + 0x40;
        let mut cursor = base;
        for fid in 0..nf {
            let entry = cursor;
            let size = min_size + rng.gen_range(0..0x280u64) * 4;
            cursor += size;
            let mut sites = Vec::with_capacity(shape.blocks_per_fn);
            for s in 0..shape.blocks_per_fn {
                let pc = entry + 0x48 * (s as u64 + 1) + rng.gen_range(0..8u64) * 4;
                let roll: f64 = rng.gen();
                let kind = if roll < shape.call_fraction && fid + 1 < nf {
                    // Callees strictly deeper in the DAG; mostly near.
                    let lo = fid + 1;
                    let hi = (fid + 9).min(nf - 1);
                    if rng.gen::<f64>() < 0.25 {
                        let n = rng.gen_range(2..=4usize);
                        let callees = (0..n).map(|_| rng.gen_range(lo..=hi)).collect::<Vec<_>>();
                        SiteKind::IndirectCall { callees }
                    } else {
                        SiteKind::Call {
                            callee: rng.gen_range(lo..=hi),
                        }
                    }
                } else if roll < shape.call_fraction + shape.indirect_fraction {
                    let n = shape.indirect_targets.max(2);
                    let targets = (0..n)
                        .map(|k| pc + 0x100 + 0x90 * k as u64)
                        .collect::<Vec<_>>();
                    SiteKind::IndirectJump { targets }
                } else {
                    SiteKind::Cond {
                        behavior: Self::sample_cond(shape, rng),
                        taken_target: pc + 0x40 + rng.gen_range(0..4u64) * 8,
                    }
                };
                sites.push(Site { pc, kind });
            }
            let exit_pc = entry + size - 8;
            functions.push(Function {
                entry,
                exit_pc,
                sites,
            });
        }
        let main_pcs = (0..8)
            .map(|i| base + 0x10_0000 + i * 0x20)
            .collect::<Vec<_>>();
        Program {
            functions,
            blocks_per_fn: shape.blocks_per_fn,
            main_pcs,
        }
    }

    fn sample_cond(shape: &ProgramShape, rng: &mut StdRng) -> CondBehavior {
        let roll: f64 = rng.gen();
        if roll < shape.loop_fraction {
            let trip = 2 + (rng.gen::<f64>() * 2.0 * shape.avg_trip as f64) as u32;
            CondBehavior::Loop { trip }
        } else if roll < shape.loop_fraction + shape.pattern_complexity {
            // Short periods are learnable by every model; long periods need
            // deep history (TAGE) — 30 % of patterned sites are long.
            let len = if rng.gen::<f64>() < 0.7 {
                rng.gen_range(3..=6u8)
            } else {
                rng.gen_range(10..=24u8)
            };
            // Pattern bits are bias-dominated like real code: a base
            // predictor gets the majority direction, history predictors
            // learn the exact sequence.
            let mut pattern = 0u64;
            for b in 0..len {
                if rng.gen::<f64>() < 0.72 {
                    pattern |= 1 << b;
                }
            }
            CondBehavior::Periodic { pattern, len }
        } else {
            // Real code is dominated by heavily biased branches; workloads
            // differ mainly in the share of hard, data-dependent ones.
            let u: f64 = rng.gen();
            let hard_share = (shape.hardness * 3.0).clamp(0.03, 0.30);
            let eps = if u < hard_share {
                rng.gen_range(0.20..0.40) // hard: 60-80 % predictable
            } else if u < hard_share + 0.20 {
                rng.gen_range(0.05..0.15) // medium
            } else {
                rng.gen_range(0.005..0.03) // easy: near-always one way
            };
            let p = if rng.gen::<f64>() < shape.taken_bias {
                1.0 - eps
            } else {
                eps
            };
            CondBehavior::Bernoulli { p_taken: p }
        }
    }

    fn site_id(&self, func: usize, site: usize) -> usize {
        func * self.blocks_per_fn + site
    }
}

#[derive(Clone, Copy, Debug)]
struct Frame {
    func: usize,
    site: usize,
    ret_addr: u64,
}

/// The abstract machine executing a [`Program`].
#[derive(Clone, Debug)]
pub(crate) struct Walker {
    stack: Vec<Frame>,
    /// Per-site phase state (loop counters, pattern positions, rotors).
    phase: Vec<u32>,
    main_rotor: usize,
    max_depth: usize,
    noise: f64,
    rng: StdRng,
}

impl Walker {
    pub fn new(prog: &Program, max_depth: usize, noise: f64, seed: u64) -> Walker {
        Walker {
            stack: Vec::new(),
            phase: vec![0; prog.functions.len() * prog.blocks_per_fn],
            main_rotor: 0,
            max_depth: max_depth.max(2),
            noise,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Emits the next branch of this program.
    pub fn next(&mut self, prog: &Program) -> BranchRecord {
        // Empty stack: the dispatcher calls a (hot-skewed) top-level
        // function from one of its call sites.
        if self.stack.is_empty() {
            let r: f64 = self.rng.gen();
            let f = ((r * r) * prog.functions.len() as f64) as usize % prog.functions.len();
            let main_pc = prog.main_pcs[self.main_rotor % prog.main_pcs.len()];
            self.main_rotor += 1;
            let rec = BranchRecord::taken(main_pc, BranchKind::DirectCall, prog.functions[f].entry);
            self.stack.push(Frame {
                func: f,
                site: 0,
                ret_addr: rec.fallthrough().raw(),
            });
            return rec;
        }

        let frame = *self.stack.last().expect("nonempty");
        let function = &prog.functions[frame.func];

        // Function body exhausted: return.
        if frame.site >= function.sites.len() {
            self.stack.pop();
            return BranchRecord::taken(function.exit_pc, BranchKind::Return, frame.ret_addr);
        }

        let site = &function.sites[frame.site];
        let sid = prog.site_id(frame.func, frame.site);
        match &site.kind {
            SiteKind::Cond {
                behavior,
                taken_target,
            } => {
                let (mut taken, advance) = match behavior {
                    CondBehavior::Loop { trip } => {
                        let pos = self.phase[sid];
                        let taken = pos + 1 < *trip;
                        self.phase[sid] = if taken { pos + 1 } else { 0 };
                        (taken, !taken)
                    }
                    CondBehavior::Periodic { pattern, len } => {
                        let pos = self.phase[sid];
                        let taken = (pattern >> (pos % *len as u32)) & 1 == 1;
                        self.phase[sid] = pos.wrapping_add(1);
                        (taken, true)
                    }
                    CondBehavior::Bernoulli { p_taken } => (self.rng.gen::<f64>() < *p_taken, true),
                };
                // Intrinsic noise: data-dependent outcomes no predictor can
                // learn. Loops are exempt (control-exact).
                if !matches!(behavior, CondBehavior::Loop { .. })
                    && self.rng.gen::<f64>() < self.noise
                {
                    taken = self.rng.gen();
                }
                if advance {
                    self.stack.last_mut().expect("nonempty").site += 1;
                }
                let target = if matches!(behavior, CondBehavior::Loop { .. }) {
                    site.pc // back edge to the loop head
                } else {
                    *taken_target
                };
                BranchRecord::conditional(site.pc, taken, target)
            }
            SiteKind::Call { callee } => {
                self.stack.last_mut().expect("nonempty").site += 1;
                self.descend(prog, *callee, site.pc)
            }
            SiteKind::IndirectCall { callees } => {
                self.stack.last_mut().expect("nonempty").site += 1;
                let pick = self.rotate(sid, callees.len());
                self.descend(prog, callees[pick], site.pc)
            }
            SiteKind::IndirectJump { targets } => {
                self.stack.last_mut().expect("nonempty").site += 1;
                let pick = self.rotate(sid, targets.len());
                BranchRecord::taken(site.pc, BranchKind::IndirectJump, targets[pick])
            }
        }
    }

    /// Indirect-target selection: mostly phase-rotating (context-
    /// correlated, learnable via the BHB) with occasional random jumps.
    fn rotate(&mut self, sid: usize, n: usize) -> usize {
        let pos = self.phase[sid];
        self.phase[sid] = pos.wrapping_add(1);
        if self.rng.gen::<f64>() < 0.15 {
            self.rng.gen_range(0..n)
        } else {
            ((pos / 3) as usize) % n
        }
    }

    fn descend(&mut self, prog: &Program, callee: usize, call_pc: u64) -> BranchRecord {
        let kind = BranchKind::DirectCall;
        let rec = BranchRecord::taken(call_pc, kind, prog.functions[callee].entry);
        let site = if self.stack.len() >= self.max_depth {
            // Depth-bounded: enter the callee at its end so the next step
            // returns immediately (call/ret pairing preserved).
            prog.functions[callee].sites.len()
        } else {
            0
        };
        self.stack.push(Frame {
            func: callee,
            site,
            ret_addr: rec.fallthrough().raw(),
        });
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ProgramShape {
        ProgramShape {
            functions: 20,
            blocks_per_fn: 6,
            loop_fraction: 0.3,
            avg_trip: 10,
            pattern_complexity: 0.2,
            taken_bias: 0.7,
            indirect_fraction: 0.08,
            indirect_targets: 3,
            call_fraction: 0.2,
            hardness: 0.05,
        }
    }

    fn build() -> (Program, Walker) {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Program::build(&shape(), 0x40_0000_0000, &mut rng);
        let w = Walker::new(&p, 12, 0.03, 2);
        (p, w)
    }

    #[test]
    fn calls_and_returns_nest_perfectly() {
        let (p, mut w) = build();
        let mut shadow: Vec<u64> = Vec::new();
        for _ in 0..20_000 {
            let rec = w.next(&p);
            match rec.kind {
                BranchKind::DirectCall | BranchKind::IndirectCall => {
                    shadow.push(rec.fallthrough().raw());
                }
                BranchKind::Return => {
                    let expect = shadow.pop().expect("return without call");
                    assert_eq!(rec.target.raw(), expect, "mismatched return target");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn depth_stays_bounded() {
        let (p, mut w) = build();
        let mut depth = 0i64;
        let mut max_depth = 0i64;
        for _ in 0..50_000 {
            let rec = w.next(&p);
            match rec.kind {
                BranchKind::DirectCall | BranchKind::IndirectCall => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                BranchKind::Return => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert!(max_depth <= 13, "walker exceeded depth bound: {max_depth}");
        assert!(
            max_depth >= 4,
            "programs should actually recurse: {max_depth}"
        );
    }

    #[test]
    fn branch_mix_roughly_matches_shape() {
        let (p, mut w) = build();
        let mut counts = [0usize; 6];
        let n = 50_000;
        for _ in 0..n {
            counts[w.next(&p).kind.index()] += 1;
        }
        let cond = counts[BranchKind::Conditional.index()] as f64 / n as f64;
        let ind = counts[BranchKind::IndirectJump.index()] as f64 / n as f64;
        let ret = counts[BranchKind::Return.index()] as f64;
        let calls = (counts[BranchKind::DirectCall.index()]
            + counts[BranchKind::IndirectCall.index()]) as f64;
        assert!(cond > 0.4, "conditionals dominate: {cond}");
        assert!(ind > 0.005, "indirect jumps present: {ind}");
        assert!((ret - calls).abs() / calls < 0.05, "returns ≈ calls");
    }

    #[test]
    fn loops_emit_runs_of_taken() {
        let (p, mut w) = build();
        // Find a run of ≥ 4 consecutive taken outcomes at one pc — loop
        // behaviour must be visible in the stream.
        let mut best_run = 0;
        let mut cur: Option<(u64, u32)> = None;
        for _ in 0..20_000 {
            let rec = w.next(&p);
            if rec.kind == BranchKind::Conditional && rec.taken {
                cur = match cur {
                    Some((pc, n)) if pc == rec.pc.raw() => Some((pc, n + 1)),
                    _ => Some((rec.pc.raw(), 1)),
                };
                best_run = best_run.max(cur.map(|c| c.1).unwrap_or(0));
            } else {
                cur = None;
            }
        }
        assert!(best_run >= 4, "no loop runs found (best {best_run})");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Program::build(&shape(), 0x40_0000_0000, &mut rng);
        let mut w1 = Walker::new(&p, 12, 0.03, 7);
        let mut w2 = Walker::new(&p, 12, 0.03, 7);
        for _ in 0..5_000 {
            assert_eq!(w1.next(&p), w2.next(&p));
        }
    }
}

//! Compact binary trace format (`.stbt`) — the paper-scale on-disk
//! representation.
//!
//! The line format (see [`crate::serialize`]) is convenient to diff and
//! hand-edit, but at 100M+ branches text parsing dominates ingest and the
//! files are ~30 bytes per event. This module provides the binary
//! equivalent: a magic+versioned header followed by varint-packed records
//! with delta-encoded program counters, typically 5–8 bytes per branch —
//! the same trade CBP-style tooling makes for SPEC-scale captures.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! offset size field
//! 0      4    magic "STBT"
//! 4      2    format version (= 1)
//! 6      2    flags (bit 0: branch count present; other bits reserved, 0)
//! 8      2    declared thread count (0 = unknown)
//! 10     8    declared branch count (0 unless flags bit 0)
//! 18     2    trace-name length N
//! 20     N    trace name (UTF-8)
//! 20+N   …    records until EOF
//! ```
//!
//! Every record starts with a tag byte (bits 0–1 select the event type)
//! followed by the thread id byte:
//!
//! * **Branch** (type 0): bit 2 = taken, bits 3–5 = branch kind index,
//!   bit 6 = explicit instruction length byte follows (otherwise 4),
//!   bit 7 = explicit target follows (otherwise the fall-through address
//!   `pc + ilen`). Payload: the PC as a zigzag varint delta against the
//!   previous branch PC *on the same thread*, then the optional `ilen`
//!   byte, then the optional target as a zigzag varint delta against this
//!   record's PC, then the instruction gap as a varint.
//! * **Context switch** (type 1): payload is the entity id as a varint.
//! * **Mode switch** (type 2): bit 2 = kernel entry; no payload.
//! * **Interrupt** (type 3): no payload.
//!
//! Reserved tag bits must be zero; readers reject nonzero reserved bits,
//! unknown header flags and unknown versions, so corruption and format
//! drift fail loudly instead of decoding garbage (see CONTRIBUTING.md for
//! the version-bump policy).
//!
//! # Round trips
//!
//! The encoding is lossless: every [`TraceEvent`] field round-trips
//! exactly, so `line → binary → line` reproduces the line file
//! byte-for-byte (given the same normalized header) and
//! `binary → line → binary` reproduces the binary file byte-for-byte.
//! CI keeps a golden `.stbt` fixture under `ci/` as the format-stability
//! gate.
//!
//! ```
//! use stbpu_trace::binfmt::{read_bin_trace, write_bin_trace};
//! use stbpu_trace::{TraceGenerator, WorkloadProfile};
//!
//! let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).generate(500);
//! let mut buf = Vec::new();
//! write_bin_trace(&t, &mut buf).unwrap();
//! let back = read_bin_trace(buf.as_slice()).unwrap();
//! assert_eq!(back.events(), t.events());
//! assert_eq!(back.name, t.name);
//! ```

use crate::event::{Trace, TraceEvent};
use crate::source::{EventSource, SourceError};
use stbpu_bpu::{BranchKind, BranchRecord, EntityId, VirtAddr};
use std::fmt;
use std::io::{Read, Write};

/// The four-byte file magic leading every `.stbt` file.
pub const MAGIC: [u8; 4] = *b"STBT";

/// The format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Header flag: the declared branch count field is meaningful.
const FLAG_BRANCH_COUNT: u16 = 1;
/// All flag bits a version-1 reader understands.
const KNOWN_FLAGS: u16 = FLAG_BRANCH_COUNT;

/// Fixed-size header prefix (everything before the trace name).
const HEADER_FIXED: usize = 20;

/// Upper bound on one encoded record: tag + tid + three maximal varints
/// (10 bytes each) + the ilen byte. Readers keep at least this many bytes
/// buffered (except at EOF), so record decoding never spans a refill.
const MAX_RECORD: usize = 33;

/// Event type codes (tag bits 0–1).
const EV_BRANCH: u8 = 0;
const EV_CTX: u8 = 1;
const EV_MODE: u8 = 2;
const EV_IRQ: u8 = 3;

/// Branch tag bits.
const BR_TAKEN: u8 = 1 << 2;
const BR_KIND_SHIFT: u32 = 3;
const BR_ILEN: u8 = 1 << 6;
const BR_TARGET: u8 = 1 << 7;
/// Mode-switch tag bit.
const MODE_KERNEL: u8 = 1 << 2;
/// Instruction length implied when the `BR_ILEN` bit is clear.
const DEFAULT_ILEN: u8 = 4;

/// Error decoding a binary trace: carries the absolute byte offset and the
/// 1-based index of the record being decoded (0 for header errors), so a
/// corrupt capture points at the damage instead of a generic failure —
/// the binary counterpart of `ParseTraceError`'s line numbers.
#[derive(Debug)]
pub struct BinTraceError {
    offset: u64,
    record: u64,
    msg: String,
}

impl BinTraceError {
    /// Absolute byte offset the failing header field or record starts at.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// 1-based index of the record being decoded; 0 while parsing the
    /// header.
    pub fn record(&self) -> u64 {
        self.record
    }

    /// The reason, without the position prefix.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for BinTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.record == 0 {
            write!(
                f,
                "binary trace header error at byte {}: {}",
                self.offset, self.msg
            )
        } else {
            write!(
                f,
                "binary trace error at byte {} (record {}): {}",
                self.offset, self.record, self.msg
            )
        }
    }
}

impl std::error::Error for BinTraceError {}

impl From<BinTraceError> for SourceError {
    fn from(e: BinTraceError) -> Self {
        SourceError(e.to_string())
    }
}

/// Zigzag-encodes a signed delta so small magnitudes of either sign get
/// short varints. Public for protocols built on the same primitives
/// (e.g. the serve wire format).
pub fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends an LEB128 varint.
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// An LEB128 varint whose continuation bytes run past 64 bits of payload
/// — corrupt input, never produced by [`push_varint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarintOverflow;

impl fmt::Display for VarintOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("varint overflows 64 bits")
    }
}

impl std::error::Error for VarintOverflow {}

/// Bounds-checked LEB128 decode from the front of `data` — the
/// untrusted-input counterpart of the reader's internal trusted-index
/// decoder. Returns `Ok(Some((value, encoded_len)))` on a complete
/// varint, `Ok(None)` when `data` ends mid-varint (stream callers wait
/// for more bytes), and never reads past the tenth byte.
///
/// # Errors
///
/// [`VarintOverflow`] when the encoding exceeds 64 bits of payload.
pub fn decode_varint(data: &[u8]) -> Result<Option<(u64, usize)>, VarintOverflow> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (n, &b) in data.iter().enumerate().take(10) {
        if shift == 63 && b > 1 {
            return Err(VarintOverflow);
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(Some((v, n + 1)));
        }
        shift += 7;
    }
    // Ten buffered bytes always resolve inside the loop (the tenth byte
    // is terminal or overflows), so falling out means a short buffer.
    Ok(None)
}

/// Branch kind from its stable [`BranchKind::index`] value.
fn kind_from_index(i: u8) -> Option<BranchKind> {
    BranchKind::ALL.get(i as usize).copied()
}

/// Streaming `.stbt` writer: one reused encode buffer, per-thread PC
/// delta state. The API mirrors [`crate::serialize::TraceWriter`]
/// (`header`, then `event` per record), so call sites can switch formats
/// without restructuring.
///
/// ```
/// use stbpu_trace::binfmt::{BinTraceReader, BinTraceWriter};
/// use stbpu_trace::{EventSource, TraceGenerator, WorkloadProfile};
///
/// let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(100);
/// let mut buf = Vec::new();
/// let mut w = BinTraceWriter::new(&mut buf);
/// w.header(&t.name, Some(t.branch_count() as u64), t.thread_count()).unwrap();
/// for ev in t.events() {
///     w.event(ev).unwrap();
/// }
/// let mut src = BinTraceReader::new(buf.as_slice()).unwrap();
/// assert_eq!(src.branch_hint(), Some(100));
/// assert_eq!(src.collect_trace().unwrap().events(), t.events());
/// ```
pub struct BinTraceWriter<W: Write> {
    w: W,
    scratch: Vec<u8>,
    last_pc: [u64; 256],
}

impl<W: Write> BinTraceWriter<W> {
    /// Wraps `w` (pass a `BufWriter` for unbuffered sinks).
    pub fn new(w: W) -> Self {
        BinTraceWriter {
            w,
            scratch: Vec::with_capacity(MAX_RECORD),
            last_pc: [0; 256],
        }
    }

    /// Writes the file header. `branches` is the declared branch count
    /// (omit when streaming from a hint-less source); `threads` the
    /// declared thread provision (0 = unknown).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a name longer than 65535 bytes or a thread
    /// count above 65535 is rejected as invalid input.
    pub fn header(
        &mut self,
        name: &str,
        branches: Option<u64>,
        threads: usize,
    ) -> std::io::Result<()> {
        // A header starts a fresh stream: PC deltas must restart from 0
        // per thread, or a reused writer would encode the new trace's
        // first branches against the previous trace's final PCs.
        self.last_pc = [0; 256];
        let name_len = u16::try_from(name.len()).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "trace name longer than 65535 bytes",
            )
        })?;
        let threads = u16::try_from(threads).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "thread count above 65535")
        })?;
        let mut h = [0u8; HEADER_FIXED];
        h[0..4].copy_from_slice(&MAGIC);
        h[4..6].copy_from_slice(&VERSION.to_le_bytes());
        let flags = if branches.is_some() {
            FLAG_BRANCH_COUNT
        } else {
            0
        };
        h[6..8].copy_from_slice(&flags.to_le_bytes());
        h[8..10].copy_from_slice(&threads.to_le_bytes());
        h[10..18].copy_from_slice(&branches.unwrap_or(0).to_le_bytes());
        h[18..20].copy_from_slice(&name_len.to_le_bytes());
        self.w.write_all(&h)?;
        self.w.write_all(name.as_bytes())
    }

    /// Encodes and writes one event.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn event(&mut self, ev: &TraceEvent) -> std::io::Result<()> {
        self.scratch.clear();
        match *ev {
            TraceEvent::Branch { tid, rec } => {
                let mut tag = EV_BRANCH | ((rec.kind.index() as u8) << BR_KIND_SHIFT);
                if rec.taken {
                    tag |= BR_TAKEN;
                }
                if rec.ilen != DEFAULT_ILEN {
                    tag |= BR_ILEN;
                }
                if rec.target != rec.fallthrough() {
                    tag |= BR_TARGET;
                }
                self.scratch.push(tag);
                self.scratch.push(tid);
                let last = &mut self.last_pc[tid as usize];
                let pc = rec.pc.raw();
                push_varint(&mut self.scratch, zigzag(pc.wrapping_sub(*last) as i64));
                *last = pc;
                if tag & BR_ILEN != 0 {
                    self.scratch.push(rec.ilen);
                }
                if tag & BR_TARGET != 0 {
                    push_varint(
                        &mut self.scratch,
                        zigzag(rec.target.raw().wrapping_sub(pc) as i64),
                    );
                }
                push_varint(&mut self.scratch, rec.gap as u64);
            }
            TraceEvent::ContextSwitch { tid, entity } => {
                self.scratch.push(EV_CTX);
                self.scratch.push(tid);
                push_varint(&mut self.scratch, entity.0 as u64);
            }
            TraceEvent::ModeSwitch { tid, kernel } => {
                self.scratch
                    .push(EV_MODE | if kernel { MODE_KERNEL } else { 0 });
                self.scratch.push(tid);
            }
            TraceEvent::Interrupt { tid } => {
                self.scratch.push(EV_IRQ);
                self.scratch.push(tid);
            }
        }
        self.w.write_all(&self.scratch)
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }

    /// Unwraps the underlying writer (does not flush).
    pub fn into_inner(self) -> W {
        self.w
    }

    /// The underlying writer. Lets a chunking caller (e.g. the serve
    /// client) take encoded bytes out of a `Vec<u8>` sink mid-stream
    /// while the writer keeps its per-thread PC delta state — the decoder
    /// on the far side ([`RecordDecoder`]) carries matching state, so the
    /// chunk boundaries can fall anywhere.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.w
    }
}

/// Writes `trace` as a `.stbt` stream, declaring its exact branch and
/// thread counts — the binary counterpart of
/// [`crate::serialize::write_trace`].
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_bin_trace<W: Write>(trace: &Trace, w: W) -> std::io::Result<()> {
    let mut bw = BinTraceWriter::new(w);
    bw.header(
        &trace.name,
        Some(trace.branch_count() as u64),
        trace.thread_count(),
    )?;
    for ev in trace.events() {
        bw.event(ev)?;
    }
    Ok(())
}

/// Decodes an LEB128 varint at `data[*i]`, advancing `*i`. The caller
/// guarantees at least 10 readable bytes from `*i` (the loop never reads
/// more: at shift 63 only terminal bytes 0/1 are accepted).
#[inline]
fn read_varint(data: &[u8], i: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = data[*i];
        *i += 1;
        if shift == 63 && b > 1 {
            return Err("varint overflows 64 bits".to_string());
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Decodes one record at `data[*i]`, advancing `*i`; `last_pc` carries
/// the per-thread PC delta state. The caller guarantees at least
/// [`MAX_RECORD`] readable bytes from `*i` (the reader keeps that much
/// buffered; the EOF tail is decoded out of a zero-padded copy), so the
/// hot path runs on plain indexing with no per-byte error plumbing.
#[inline]
fn decode_event(
    data: &[u8],
    i: &mut usize,
    last_pc: &mut [u64; 256],
) -> Result<TraceEvent, String> {
    let tag = data[*i];
    let tid = data[*i + 1];
    *i += 2;
    match tag & 0b11 {
        EV_BRANCH => {
            let kind_idx = (tag >> BR_KIND_SHIFT) & 0b111;
            let kind = kind_from_index(kind_idx)
                .ok_or_else(|| format!("bad branch kind index {kind_idx}"))?;
            let last = &mut last_pc[tid as usize];
            let pc_raw = last.wrapping_add(unzigzag(read_varint(data, i)?) as u64);
            let pc = VirtAddr::new(pc_raw);
            *last = pc.raw();
            let ilen = if tag & BR_ILEN != 0 {
                let b = data[*i];
                *i += 1;
                b
            } else {
                DEFAULT_ILEN
            };
            let target = if tag & BR_TARGET != 0 {
                VirtAddr::new(
                    pc.raw()
                        .wrapping_add(unzigzag(read_varint(data, i)?) as u64),
                )
            } else {
                VirtAddr::new(pc.raw() + ilen as u64)
            };
            let gap = u16::try_from(read_varint(data, i)?)
                .map_err(|_| "gap exceeds 16 bits".to_string())?;
            Ok(TraceEvent::Branch {
                tid,
                rec: BranchRecord {
                    pc,
                    kind,
                    taken: tag & BR_TAKEN != 0,
                    target,
                    ilen,
                    gap,
                },
            })
        }
        EV_CTX => {
            if tag != EV_CTX {
                return Err(format!(
                    "reserved tag bits set on context switch (tag {tag:#04x})"
                ));
            }
            let e = u32::try_from(read_varint(data, i)?)
                .map_err(|_| "entity id exceeds 32 bits".to_string())?;
            Ok(TraceEvent::ContextSwitch {
                tid,
                entity: EntityId(e),
            })
        }
        EV_MODE => {
            if tag & !(EV_MODE | MODE_KERNEL) != 0 {
                return Err(format!(
                    "reserved tag bits set on mode switch (tag {tag:#04x})"
                ));
            }
            Ok(TraceEvent::ModeSwitch {
                tid,
                kernel: tag & MODE_KERNEL != 0,
            })
        }
        _ => {
            if tag != EV_IRQ {
                return Err(format!(
                    "reserved tag bits set on interrupt (tag {tag:#04x})"
                ));
            }
            Ok(TraceEvent::Interrupt { tid })
        }
    }
}

/// Streaming `.stbt` reader: an [`EventSource`] decoding records out of an
/// internal 256 KiB buffer, so any `Read` (a bare `File` included — no
/// `BufReader` needed) streams in O(1) memory. The [`EventSource::next_batch`]
/// override decodes straight out of the buffer, which is what lets binary
/// ingest ride the batched `SimSession` hot path.
pub struct BinTraceReader<R: Read> {
    r: R,
    buf: Vec<u8>,
    pos: usize,
    filled: usize,
    /// Absolute file offset of `buf[0]`.
    base: u64,
    eof: bool,
    done: bool,
    name: String,
    threads: usize,
    branch_hint: Option<u64>,
    /// The version parsed from the stream header.
    version: u16,
    last_pc: [u64; 256],
    /// Records decoded so far (error positions are 1-based from this).
    records: u64,
}

impl<R: Read> BinTraceReader<R> {
    /// Wraps `reader`, eagerly parsing the header so declared metadata is
    /// available before the first event.
    ///
    /// # Errors
    ///
    /// Returns [`BinTraceError`] on a bad magic, an unsupported version,
    /// unknown flag bits, or a truncated/garbled header.
    pub fn new(reader: R) -> Result<Self, BinTraceError> {
        let mut tr = BinTraceReader {
            r: reader,
            buf: vec![0; 256 * 1024],
            pos: 0,
            filled: 0,
            base: 0,
            eof: false,
            done: false,
            name: String::new(),
            threads: 0,
            branch_hint: None,
            version: 0,
            last_pc: [0; 256],
            records: 0,
        };
        tr.refill()?;
        tr.parse_header()?;
        Ok(tr)
    }

    /// Parses the leading header out of the freshly filled buffer (the
    /// buffer is larger than any legal header, so no refill is needed).
    fn parse_header(&mut self) -> Result<(), BinTraceError> {
        let err = |offset: u64, msg: String| BinTraceError {
            offset,
            record: 0,
            msg,
        };
        let head = &self.buf[..self.filled];
        if head.len() < 4 || head[0..4] != MAGIC {
            let found: Vec<u8> = head.iter().take(4).copied().collect();
            return Err(err(
                0,
                format!(
                    "bad magic: expected {:?} (\"STBT\"), found {:?}{}",
                    MAGIC,
                    found,
                    if head.len() < 4 {
                        " (file shorter than the magic)"
                    } else {
                        ""
                    }
                ),
            ));
        }
        if head.len() < HEADER_FIXED {
            return Err(err(
                head.len() as u64,
                format!(
                    "truncated header: {} bytes, need at least {HEADER_FIXED}",
                    head.len()
                ),
            ));
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        self.version = version;
        if version != VERSION {
            return Err(err(
                4,
                format!(
                    "unsupported format version {version} (this build reads version {VERSION})"
                ),
            ));
        }
        let flags = u16::from_le_bytes([head[6], head[7]]);
        if flags & !KNOWN_FLAGS != 0 {
            return Err(err(
                6,
                format!("unknown header flags {:#06x}", flags & !KNOWN_FLAGS),
            ));
        }
        self.threads = u16::from_le_bytes([head[8], head[9]]) as usize;
        let count = u64::from_le_bytes(head[10..18].try_into().expect("8 bytes"));
        self.branch_hint = (flags & FLAG_BRANCH_COUNT != 0).then_some(count);
        let name_len = u16::from_le_bytes([head[18], head[19]]) as usize;
        let name_end = HEADER_FIXED + name_len;
        if head.len() < name_end {
            return Err(err(
                head.len() as u64,
                format!(
                    "truncated header: trace name declares {name_len} bytes, \
                     only {} present",
                    head.len() - HEADER_FIXED
                ),
            ));
        }
        self.name = std::str::from_utf8(&head[HEADER_FIXED..name_end])
            .map_err(|_| err(HEADER_FIXED as u64, "trace name is not UTF-8".to_string()))?
            .to_string();
        self.pos = name_end;
        Ok(())
    }

    /// The on-disk format version parsed from the stream's header (a
    /// version-1 reader only ever opens version-1 streams today, but the
    /// accessor reports what the file says, not what the build supports).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Slides unread bytes to the buffer front and reads until the buffer
    /// is full or the underlying reader reports EOF.
    fn refill(&mut self) -> Result<(), BinTraceError> {
        self.buf.copy_within(self.pos..self.filled, 0);
        self.base += self.pos as u64;
        self.filled -= self.pos;
        self.pos = 0;
        while self.filled < self.buf.len() && !self.eof {
            let n = self
                .r
                .read(&mut self.buf[self.filled..])
                .map_err(|e| BinTraceError {
                    offset: self.base + self.filled as u64,
                    record: self.records + 1,
                    msg: format!("I/O error: {e}"),
                })?;
            if n == 0 {
                self.eof = true;
            }
            self.filled += n;
        }
        Ok(())
    }

    /// Builds the positioned error for a failed decode at buffer index
    /// `start`.
    fn record_error(&self, start: usize, msg: String) -> BinTraceError {
        BinTraceError {
            offset: self.base + start as u64,
            record: self.records + 1,
            msg,
        }
    }

    /// Decodes the trailing (post-EOF) bytes, which may be shorter than
    /// [`MAX_RECORD`]: the remainder is copied into a zero-padded scratch
    /// array so the trusted-index decoder stays panic-free, and a decode
    /// that consumed padding means the final record was cut off.
    fn decode_tail(&mut self) -> Result<TraceEvent, BinTraceError> {
        let remaining = self.filled - self.pos;
        debug_assert!(self.eof && remaining < MAX_RECORD);
        let mut pad = [0u8; MAX_RECORD];
        pad[..remaining].copy_from_slice(&self.buf[self.pos..self.filled]);
        let mut i = 0;
        match decode_event(&pad, &mut i, &mut self.last_pc) {
            Ok(_) if i > remaining => Err(self.record_error(
                self.pos,
                format!(
                    "truncated record: the {remaining} trailing bytes do not form a \
                     complete record"
                ),
            )),
            Ok(ev) => {
                self.pos += i;
                self.records += 1;
                Ok(ev)
            }
            Err(msg) => Err(self.record_error(self.pos, msg)),
        }
    }

    /// Pulls the next event (typed error, used by [`read_bin_trace`]).
    pub fn next_record(&mut self) -> Result<Option<TraceEvent>, BinTraceError> {
        if self.done {
            return Ok(None);
        }
        if self.filled - self.pos < MAX_RECORD && !self.eof {
            self.refill()?;
        }
        if self.pos == self.filled {
            self.done = true;
            return Ok(None);
        }
        if self.filled - self.pos < MAX_RECORD {
            return self.decode_tail().map(Some);
        }
        let start = self.pos;
        let mut i = start;
        match decode_event(&self.buf, &mut i, &mut self.last_pc) {
            Ok(ev) => {
                self.pos = i;
                self.records += 1;
                Ok(Some(ev))
            }
            Err(msg) => Err(self.record_error(start, msg)),
        }
    }
}

impl<R: Read> EventSource for BinTraceReader<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn branch_hint(&self) -> Option<u64> {
        self.branch_hint
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, SourceError> {
        self.next_record().map_err(SourceError::from)
    }

    /// The batched fast path: decodes straight out of the internal byte
    /// buffer in a tight loop, hoisting the refill/EOF checks out of the
    /// per-record work — this is what lets `.stbt` ingest run at many
    /// times line-format parse speed.
    fn next_batch(&mut self, buf: &mut Vec<TraceEvent>, max: usize) -> Result<usize, SourceError> {
        buf.clear();
        while buf.len() < max {
            if self.done {
                break;
            }
            if self.filled - self.pos < MAX_RECORD && !self.eof {
                self.refill()?;
            }
            if self.pos == self.filled {
                self.done = true;
                break;
            }
            if self.filled - self.pos < MAX_RECORD {
                buf.push(self.decode_tail()?);
                continue;
            }
            // Every record starting at or before `soft_end` has its full
            // worst-case byte budget in the buffer, so this loop needs no
            // per-record bounds bookkeeping.
            let soft_end = self.filled - MAX_RECORD;
            let mut i = self.pos;
            while buf.len() < max && i <= soft_end {
                let start = i;
                match decode_event(&self.buf, &mut i, &mut self.last_pc) {
                    Ok(ev) => {
                        buf.push(ev);
                        self.records += 1;
                    }
                    Err(msg) => {
                        self.pos = start;
                        return Err(self.record_error(start, msg).into());
                    }
                }
            }
            self.pos = i;
        }
        Ok(buf.len())
    }
}

/// Incremental decoder for a headerless `.stbt` *record* stream arriving
/// in arbitrarily chunked byte slices — the server-side counterpart of a
/// [`BinTraceWriter`] whose sink is drained mid-stream (see
/// [`BinTraceWriter::get_mut`]). Chunk boundaries can fall anywhere,
/// including inside a record: bytes that do not yet form a complete
/// record are carried until the next [`RecordDecoder::feed`]. Both sides
/// start with zeroed per-thread PC delta state, so the concatenation of
/// all fed chunks decodes to exactly the event sequence that was encoded.
///
/// Input is untrusted: arbitrary bytes produce a positioned
/// [`BinTraceError`] (offsets count from the first fed byte), never a
/// panic or an over-read. After an error the decoder is poisoned — the
/// stream has no record boundaries to resynchronize on, so every further
/// call returns an error.
///
/// ```
/// use stbpu_trace::binfmt::{BinTraceWriter, RecordDecoder};
/// use stbpu_trace::{TraceGenerator, WorkloadProfile};
///
/// let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 2).generate(50);
/// let mut w = BinTraceWriter::new(Vec::new());
/// for ev in t.events() {
///     w.event(ev).unwrap();
/// }
/// let bytes = w.into_inner(); // headerless: header() was never called
///
/// let mut dec = RecordDecoder::new();
/// let mut out = Vec::new();
/// for chunk in bytes.chunks(7) {
///     dec.feed(chunk, &mut out).unwrap();
/// }
/// dec.finish(&mut out).unwrap();
/// assert_eq!(out.as_slice(), t.events());
/// ```
pub struct RecordDecoder {
    /// Bytes fed but not yet decoded (at most one partial record plus
    /// the under-`MAX_RECORD` slack the trusted decoder cannot touch).
    carry: Vec<u8>,
    /// Absolute stream offset of `carry[0]`.
    base: u64,
    last_pc: [u64; 256],
    records: u64,
    poisoned: bool,
}

impl Default for RecordDecoder {
    fn default() -> Self {
        RecordDecoder::new()
    }
}

impl RecordDecoder {
    /// A decoder at stream offset 0 with zeroed per-thread delta state.
    pub fn new() -> Self {
        RecordDecoder {
            carry: Vec::new(),
            base: 0,
            last_pc: [0; 256],
            records: 0,
            poisoned: false,
        }
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes currently carried awaiting completion (quota accounting).
    pub fn buffered(&self) -> usize {
        self.carry.len()
    }

    fn record_error(&self, at: usize, msg: String) -> BinTraceError {
        BinTraceError {
            offset: self.base + at as u64,
            record: self.records + 1,
            msg,
        }
    }

    fn check_poison(&self) -> Result<(), BinTraceError> {
        if self.poisoned {
            return Err(BinTraceError {
                offset: self.base,
                record: self.records + 1,
                msg: "decoder poisoned by an earlier error".to_string(),
            });
        }
        Ok(())
    }

    /// Appends `chunk` and decodes every record that is now complete into
    /// `out` (appended, not cleared). Bytes of a trailing partial record
    /// are carried for the next call.
    ///
    /// # Errors
    ///
    /// A positioned [`BinTraceError`] on malformed bytes; the decoder is
    /// poisoned afterwards.
    pub fn feed(&mut self, chunk: &[u8], out: &mut Vec<TraceEvent>) -> Result<(), BinTraceError> {
        self.check_poison()?;
        self.carry.extend_from_slice(chunk);
        // Mirror the reader's batched hot loop: every record starting at
        // or before `soft_end` has its worst-case byte budget buffered,
        // so the trusted-index decoder never over-reads.
        if self.carry.len() < MAX_RECORD {
            return Ok(());
        }
        let soft_end = self.carry.len() - MAX_RECORD;
        let mut i = 0;
        while i <= soft_end {
            let start = i;
            match decode_event(&self.carry, &mut i, &mut self.last_pc) {
                Ok(ev) => {
                    out.push(ev);
                    self.records += 1;
                }
                Err(msg) => {
                    self.poisoned = true;
                    return Err(self.record_error(start, msg));
                }
            }
        }
        self.carry.drain(..i);
        self.base += i as u64;
        Ok(())
    }

    /// Declares end of stream and decodes the carried tail (which the
    /// slack rule kept [`RecordDecoder::feed`] from touching), appending
    /// to `out`. The decoder is spent afterwards — further calls error.
    ///
    /// # Errors
    ///
    /// A positioned [`BinTraceError`] on malformed bytes or when the
    /// stream ends inside a record.
    pub fn finish(&mut self, out: &mut Vec<TraceEvent>) -> Result<(), BinTraceError> {
        self.check_poison()?;
        self.poisoned = true; // spent either way
        let mut pos = 0;
        while pos < self.carry.len() {
            let remaining = self.carry.len() - pos;
            // Zero-padded scratch keeps the trusted-index decoder in
            // bounds; consuming padding means the record was cut off
            // (the same tail discipline as `BinTraceReader`).
            let mut pad = [0u8; MAX_RECORD];
            let take = remaining.min(MAX_RECORD);
            pad[..take].copy_from_slice(&self.carry[pos..pos + take]);
            let mut i = 0;
            match decode_event(&pad, &mut i, &mut self.last_pc) {
                Ok(_) if i > remaining => {
                    return Err(self.record_error(
                        pos,
                        format!(
                            "truncated record: the {remaining} trailing bytes do not \
                             form a complete record"
                        ),
                    ));
                }
                Ok(ev) => {
                    out.push(ev);
                    self.records += 1;
                    pos += i;
                }
                Err(msg) => return Err(self.record_error(pos, msg)),
            }
        }
        self.carry.clear();
        self.base += pos as u64;
        Ok(())
    }
}

/// Reads a whole binary trace (materializing wrapper over
/// [`BinTraceReader`]).
///
/// # Errors
///
/// Returns [`BinTraceError`] on header or record corruption; I/O errors
/// carry the byte offset they occurred at.
pub fn read_bin_trace<R: Read>(r: R) -> Result<Trace, BinTraceError> {
    let mut reader = BinTraceReader::new(r)?;
    let mut trace = Trace::new(reader.name());
    while let Some(ev) = reader.next_record()? {
        trace.push(ev);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadProfile};

    fn sample(branches: usize) -> Trace {
        TraceGenerator::new(&WorkloadProfile::test_profile(), 7).generate(branches)
    }

    fn encode(t: &Trace) -> Vec<u8> {
        let mut buf = Vec::new();
        write_bin_trace(t, &mut buf).expect("write");
        buf
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample(2_000);
        let back = read_bin_trace(encode(&t).as_slice()).expect("read");
        assert_eq!(back.name, t.name);
        assert_eq!(back.events(), t.events());
        assert_eq!(back.branch_count(), 2_000);
        assert_eq!(back.thread_count(), t.thread_count());
    }

    #[test]
    fn reader_declares_header_metadata() {
        let t = sample(300);
        let buf = encode(&t);
        let mut src = BinTraceReader::new(buf.as_slice()).expect("header");
        assert_eq!(src.name(), t.name);
        assert_eq!(src.branch_hint(), Some(300));
        assert_eq!(src.thread_count(), t.thread_count());
        assert_eq!(src.version(), VERSION);
        let back = src.collect_trace().expect("stream");
        assert_eq!(back.events(), t.events());
        // Exhausted sources stay exhausted.
        assert_eq!(src.next_event().unwrap(), None);
    }

    #[test]
    fn batched_pulls_concatenate_to_the_event_stream() {
        let t = sample(700);
        let buf = encode(&t);
        let mut src = BinTraceReader::new(buf.as_slice()).expect("header");
        let mut batch = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = src.next_batch(&mut batch, 97).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&batch);
        }
        assert_eq!(got.as_slice(), t.events());
        assert_eq!(src.next_batch(&mut batch, 97).unwrap(), 0);
    }

    #[test]
    fn binary_is_much_smaller_than_line_format() {
        let t = sample(5_000);
        let bin = encode(&t);
        let mut line = Vec::new();
        crate::serialize::write_trace(&t, &mut line).expect("write line");
        assert!(
            bin.len() * 5 < line.len() * 2,
            "binary {} bytes vs line {} bytes (want ≤ 40%)",
            bin.len(),
            line.len()
        );
    }

    #[test]
    fn bad_magic_is_a_header_error() {
        let e = BinTraceReader::new(&b"NOPE"[..]).map(|_| ()).unwrap_err();
        assert_eq!(e.record(), 0);
        assert!(e.to_string().contains("bad magic"), "{e}");
        // Line-format text is diagnosed as a magic mismatch, not garbage.
        let e = BinTraceReader::new(&b"# trace x\nI 0\n"[..])
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("bad magic"), "{e}");
        // Empty input too.
        let e = BinTraceReader::new(&b""[..]).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("shorter than the magic"), "{e}");
    }

    #[test]
    fn version_mismatch_reports_both_versions() {
        let t = sample(10);
        let mut buf = encode(&t);
        buf[4..6].copy_from_slice(&7u16.to_le_bytes());
        let e = BinTraceReader::new(buf.as_slice()).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("version 7"), "{e}");
        assert!(e.to_string().contains("version 1"), "{e}");
        assert_eq!(e.offset(), 4);
    }

    #[test]
    fn unknown_flags_rejected() {
        let t = sample(10);
        let mut buf = encode(&t);
        buf[6] |= 0x80;
        let e = BinTraceReader::new(buf.as_slice()).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("unknown header flags"), "{e}");
    }

    #[test]
    fn truncated_header_and_name_report_offsets() {
        let t = sample(10);
        let buf = encode(&t);
        let e = BinTraceReader::new(&buf[..10]).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("truncated header"), "{e}");
        // Cut inside the trace name.
        let e = BinTraceReader::new(&buf[..HEADER_FIXED + 1])
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("trace name"), "{e}");
    }

    #[test]
    fn truncated_record_reports_offset_and_record_index() {
        let t = sample(50);
        let buf = encode(&t);
        // Chop the last byte: the final record can no longer decode.
        let mut src = BinTraceReader::new(&buf[..buf.len() - 1]).expect("header");
        let e = loop {
            match src.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncation not detected"),
                Err(e) => break e,
            }
        };
        assert!(e.to_string().contains("truncated record"), "{e}");
        assert!(e.record() > 0);
        assert!(e.offset() > HEADER_FIXED as u64);
    }

    #[test]
    fn reserved_tag_bits_rejected() {
        let t = Trace::from_events("x", [TraceEvent::Interrupt { tid: 0 }]);
        let mut buf = encode(&t);
        let tag_at = buf.len() - 2;
        buf[tag_at] = EV_IRQ | (1 << 5);
        let e = read_bin_trace(buf.as_slice()).map(|_| ()).unwrap_err();
        assert!(e.to_string().contains("reserved tag bits"), "{e}");
        assert_eq!(e.record(), 1);
    }

    #[test]
    fn extreme_field_values_roundtrip() {
        use stbpu_bpu::BranchKind;
        let mut t = Trace::new("edge");
        // Max 48-bit PC with a backwards delta, max gap, odd ilen, far
        // target, all kinds, high tid and entity values.
        for (i, kind) in BranchKind::ALL.iter().enumerate() {
            t.push(TraceEvent::Branch {
                tid: (250 + i) as u8,
                rec: BranchRecord {
                    pc: VirtAddr::new(0xffff_ffff_ffff),
                    kind: *kind,
                    taken: i % 2 == 0,
                    target: VirtAddr::new(1),
                    ilen: 15,
                    gap: u16::MAX,
                },
            });
            t.push(TraceEvent::Branch {
                tid: (250 + i) as u8,
                rec: BranchRecord {
                    pc: VirtAddr::new(0),
                    kind: *kind,
                    taken: true,
                    target: VirtAddr::new(0xffff_ffff_ffff),
                    ilen: 0,
                    gap: 0,
                },
            });
        }
        t.push(TraceEvent::ContextSwitch {
            tid: 255,
            entity: EntityId(u32::MAX),
        });
        t.push(TraceEvent::ModeSwitch {
            tid: 0,
            kernel: true,
        });
        t.push(TraceEvent::ModeSwitch {
            tid: 0,
            kernel: false,
        });
        t.push(TraceEvent::Interrupt { tid: 255 });
        let back = read_bin_trace(encode(&t).as_slice()).expect("read");
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn writer_reuse_restarts_delta_state() {
        let t = sample(200);
        let mut fresh = Vec::new();
        write_bin_trace(&t, &mut fresh).expect("write");
        // One writer, two consecutive streams: each must be byte-identical
        // to a fresh encoding (header() resets the per-thread PC deltas).
        let mut buf = Vec::new();
        let mut w = BinTraceWriter::new(&mut buf);
        for _ in 0..2 {
            w.header(&t.name, Some(t.branch_count() as u64), t.thread_count())
                .unwrap();
            for ev in t.events() {
                w.event(ev).unwrap();
            }
        }
        drop(w);
        assert_eq!(buf.len(), 2 * fresh.len());
        assert_eq!(&buf[..fresh.len()], fresh.as_slice());
        assert_eq!(&buf[fresh.len()..], fresh.as_slice());
    }

    #[test]
    fn hintless_header_roundtrips_as_no_hint() {
        let mut buf = Vec::new();
        let mut w = BinTraceWriter::new(&mut buf);
        w.header("nohint", None, 0).unwrap();
        w.event(&TraceEvent::Interrupt { tid: 3 }).unwrap();
        let src = BinTraceReader::new(buf.as_slice()).expect("header");
        assert_eq!(src.branch_hint(), None);
        assert_eq!(src.thread_count(), 0);
        assert_eq!(src.name(), "nohint");
    }

    #[test]
    fn empty_record_section_is_an_empty_trace() {
        let mut buf = Vec::new();
        BinTraceWriter::new(&mut buf)
            .header("empty", Some(0), 0)
            .unwrap();
        let t = read_bin_trace(buf.as_slice()).expect("read");
        assert!(t.is_empty());
        assert_eq!(t.name, "empty");
    }

    /// Headerless record bytes for `t`, as a chunking client encodes them.
    fn encode_records(t: &Trace) -> Vec<u8> {
        let mut w = BinTraceWriter::new(Vec::new());
        for ev in t.events() {
            w.event(ev).unwrap();
        }
        w.into_inner()
    }

    #[test]
    fn record_decoder_is_chunk_boundary_invariant() {
        let t = sample(500);
        let bytes = encode_records(&t);
        for chunk in [1, 2, 7, MAX_RECORD, 4096, bytes.len()] {
            let mut dec = RecordDecoder::new();
            let mut out = Vec::new();
            for c in bytes.chunks(chunk) {
                dec.feed(c, &mut out).unwrap();
            }
            dec.finish(&mut out).unwrap();
            assert_eq!(out.as_slice(), t.events(), "chunk size {chunk}");
            assert_eq!(dec.records(), t.events().len() as u64);
        }
    }

    #[test]
    fn record_decoder_reports_truncation_with_offset() {
        let t = sample(50);
        let bytes = encode_records(&t);
        let mut dec = RecordDecoder::new();
        let mut out = Vec::new();
        dec.feed(&bytes[..bytes.len() - 1], &mut out).unwrap();
        let e = dec.finish(&mut out).unwrap_err();
        assert!(e.to_string().contains("truncated record"), "{e}");
        assert!(e.offset() < bytes.len() as u64);
        // Poisoned afterwards.
        let e2 = dec.feed(b"\x03\x00", &mut out).unwrap_err();
        assert!(e2.to_string().contains("poisoned"), "{e2}");
    }

    #[test]
    fn record_decoder_rejects_garbage_with_position() {
        // A reserved-bits interrupt tag in the middle of a valid stream.
        let t = Trace::from_events(
            "x",
            [
                TraceEvent::Interrupt { tid: 0 },
                TraceEvent::Interrupt { tid: 1 },
            ],
        );
        let mut bytes = encode_records(&t);
        bytes[2] = EV_IRQ | (1 << 5);
        bytes.extend_from_slice(&[0u8; MAX_RECORD]); // make both records "complete"
        let mut dec = RecordDecoder::new();
        let mut out = Vec::new();
        let e = dec.feed(&bytes, &mut out).unwrap_err();
        assert_eq!(e.offset(), 2);
        assert_eq!(e.record(), 2);
        assert_eq!(out.len(), 1, "first record decoded before the damage");
    }

    #[test]
    fn decode_varint_matches_push_varint() {
        for v in [0u64, 1, 0x7f, 0x80, 0x3fff, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(decode_varint(&buf).unwrap(), Some((v, buf.len())));
            // Every strict prefix is incomplete, never an error.
            for cut in 0..buf.len() {
                assert_eq!(decode_varint(&buf[..cut]).unwrap(), None);
            }
        }
        // 64-bit overflow: ten continuation bytes.
        assert_eq!(decode_varint(&[0x80u8; 10]).unwrap_err(), VarintOverflow);
        // Tenth byte carrying more than one payload bit.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert_eq!(decode_varint(&buf).unwrap_err(), VarintOverflow);
        assert_eq!(zigzag(unzigzag(12345)), 12345);
    }

    #[test]
    fn oversized_name_rejected_at_write_time() {
        let long = "n".repeat(70_000);
        let mut buf = Vec::new();
        let e = BinTraceWriter::new(&mut buf)
            .header(&long, None, 0)
            .unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput);
    }
}

//! Plain-text trace serialization.
//!
//! A simple line-oriented format so traces can be stored, diffed and
//! exchanged (the role Intel PT dumps play for the paper's pipeline):
//!
//! ```text
//! # trace <name>
//! B <tid> <pc> <kind> <taken> <target> <ilen> <gap>
//! C <tid> <entity>
//! M <tid> <0|1>
//! I <tid>
//! ```

use crate::event::{Trace, TraceEvent};
use stbpu_bpu::{BranchKind, BranchRecord, EntityId, VirtAddr};
use std::fmt;
use std::io::{BufRead, Write};

/// Error parsing a serialized trace.
#[derive(Debug)]
pub struct ParseTraceError {
    line: usize,
    msg: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseTraceError {}

fn kind_code(k: BranchKind) -> &'static str {
    match k {
        BranchKind::DirectJump => "dj",
        BranchKind::DirectCall => "dc",
        BranchKind::Conditional => "cc",
        BranchKind::IndirectJump => "ij",
        BranchKind::IndirectCall => "ic",
        BranchKind::Return => "rt",
    }
}

fn kind_from(code: &str) -> Option<BranchKind> {
    Some(match code {
        "dj" => BranchKind::DirectJump,
        "dc" => BranchKind::DirectCall,
        "cc" => BranchKind::Conditional,
        "ij" => BranchKind::IndirectJump,
        "ic" => BranchKind::IndirectCall,
        "rt" => BranchKind::Return,
        _ => return None,
    })
}

/// Writes `trace` in the line format.
///
/// # Errors
///
/// Propagates I/O errors from the writer. A `&mut Vec<u8>` or any other
/// `Write` implementor can be passed by mutable reference.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# trace {}", trace.name)?;
    for ev in &trace.events {
        match ev {
            TraceEvent::Branch { tid, rec } => writeln!(
                w,
                "B {} {:x} {} {} {:x} {} {}",
                tid,
                rec.pc.raw(),
                kind_code(rec.kind),
                rec.taken as u8,
                rec.target.raw(),
                rec.ilen,
                rec.gap
            )?,
            TraceEvent::ContextSwitch { tid, entity } => writeln!(w, "C {} {}", tid, entity.0)?,
            TraceEvent::ModeSwitch { tid, kernel } => writeln!(w, "M {} {}", tid, *kernel as u8)?,
            TraceEvent::Interrupt { tid } => writeln!(w, "I {}", tid)?,
        }
    }
    Ok(())
}

/// Reads a trace from the line format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed lines; I/O errors are reported
/// as parse errors carrying the line number.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new("unnamed");
    let err = |line: usize, msg: &str| ParseTraceError {
        line,
        msg: msg.to_string(),
    };
    for (ln, line) in r.lines().enumerate() {
        let line = line.map_err(|e| err(ln + 1, &e.to_string()))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# trace ") {
            trace.name = rest.to_string();
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let tag = parts.next().ok_or_else(|| err(ln + 1, "empty record"))?;
        let mut next = || parts.next().ok_or_else(|| err(ln + 1, "missing field"));
        match tag {
            "B" => {
                let tid: u8 = next()?.parse().map_err(|_| err(ln + 1, "bad tid"))?;
                let pc = u64::from_str_radix(next()?, 16).map_err(|_| err(ln + 1, "bad pc"))?;
                let kind = kind_from(next()?).ok_or_else(|| err(ln + 1, "bad kind"))?;
                let taken = next()? == "1";
                let target =
                    u64::from_str_radix(next()?, 16).map_err(|_| err(ln + 1, "bad target"))?;
                let ilen: u8 = next()?.parse().map_err(|_| err(ln + 1, "bad ilen"))?;
                let gap: u16 = next()?.parse().map_err(|_| err(ln + 1, "bad gap"))?;
                trace.events.push(TraceEvent::Branch {
                    tid,
                    rec: BranchRecord {
                        pc: VirtAddr::new(pc),
                        kind,
                        taken,
                        target: VirtAddr::new(target),
                        ilen,
                        gap,
                    },
                });
            }
            "C" => {
                let tid: u8 = next()?.parse().map_err(|_| err(ln + 1, "bad tid"))?;
                let e: u32 = next()?.parse().map_err(|_| err(ln + 1, "bad entity"))?;
                trace.events.push(TraceEvent::ContextSwitch {
                    tid,
                    entity: EntityId(e),
                });
            }
            "M" => {
                let tid: u8 = next()?.parse().map_err(|_| err(ln + 1, "bad tid"))?;
                let k = next()? == "1";
                trace.events.push(TraceEvent::ModeSwitch { tid, kernel: k });
            }
            "I" => {
                let tid: u8 = next()?.parse().map_err(|_| err(ln + 1, "bad tid"))?;
                trace.events.push(TraceEvent::Interrupt { tid });
            }
            other => return Err(err(ln + 1, &format!("unknown record '{other}'"))),
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadProfile};

    #[test]
    fn roundtrip_preserves_everything() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 5).generate(2_000);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("parse");
        assert_eq!(back.name, t.name);
        assert_eq!(back.events, t.events);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_trace("B 0 zz cc 1 40 4 0".as_bytes()).is_err());
        assert!(read_trace("X 0".as_bytes()).is_err());
        assert!(read_trace("B 0 40".as_bytes()).is_err());
        let e = read_trace("Q".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = read_trace("# comment\n\nI 1\n".as_bytes()).expect("parse");
        assert_eq!(t.events.len(), 1);
    }
}

//! Plain-text trace serialization.
//!
//! A simple line-oriented format so traces can be stored, diffed and
//! exchanged (the role Intel PT dumps play for the paper's pipeline):
//!
//! ```text
//! # trace <name>
//! # branches <n>      (optional metadata, written by write_trace)
//! # threads <n>
//! B <tid> <pc> <kind> <taken> <target> <ilen> <gap>
//! C <tid> <entity>
//! M <tid> <0|1>
//! I <tid>
//! ```
//!
//! Reading is streaming-first: [`TraceReader`] implements
//! [`crate::EventSource`] over any `BufRead`, parsing one line per pulled
//! event so arbitrarily large files simulate in O(1) memory;
//! [`read_trace`] is the materializing wrapper over it.

use crate::event::{Trace, TraceEvent};
use crate::source::{EventSource, SourceError};
use stbpu_bpu::{BranchKind, BranchRecord, EntityId, VirtAddr};
use std::fmt;
use std::io::{BufRead, Write};

/// Error parsing a serialized trace.
#[derive(Debug)]
pub struct ParseTraceError {
    line: usize,
    msg: String,
}

impl ParseTraceError {
    /// 1-based line number the error occurred at.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The reason, without the line prefix.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseTraceError {}

impl From<ParseTraceError> for SourceError {
    fn from(e: ParseTraceError) -> Self {
        SourceError(e.to_string())
    }
}

fn kind_code(k: BranchKind) -> &'static str {
    match k {
        BranchKind::DirectJump => "dj",
        BranchKind::DirectCall => "dc",
        BranchKind::Conditional => "cc",
        BranchKind::IndirectJump => "ij",
        BranchKind::IndirectCall => "ic",
        BranchKind::Return => "rt",
    }
}

fn kind_from(code: &str) -> Option<BranchKind> {
    Some(match code {
        "dj" => BranchKind::DirectJump,
        "dc" => BranchKind::DirectCall,
        "cc" => BranchKind::Conditional,
        "ij" => BranchKind::IndirectJump,
        "ic" => BranchKind::IndirectCall,
        "rt" => BranchKind::Return,
        _ => return None,
    })
}

/// Writes `trace` in the line format, including the `# branches` /
/// `# threads` metadata headers streaming readers use as declared
/// [`crate::EventSource`] metadata.
///
/// # Errors
///
/// Propagates I/O errors from the writer. A `&mut Vec<u8>` or any other
/// `Write` implementor can be passed by mutable reference.
pub fn write_trace<W: Write>(trace: &Trace, w: W) -> std::io::Result<()> {
    let mut tw = TraceWriter::new(w);
    tw.header(
        &trace.name,
        Some(trace.branch_count() as u64),
        trace.thread_count(),
    )?;
    for ev in trace.events() {
        tw.event(ev)?;
    }
    Ok(())
}

/// Writes the metadata header block (`# trace` / `# branches` /
/// `# threads`); the branch count is omitted when unknown (e.g. when
/// streaming from a hint-less source).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_header<W: Write>(
    mut w: W,
    name: &str,
    branches: Option<u64>,
    threads: usize,
) -> std::io::Result<()> {
    writeln!(w, "# trace {}", name)?;
    if let Some(b) = branches {
        writeln!(w, "# branches {}", b)?;
    }
    writeln!(w, "# threads {}", threads)
}

/// Writes one event as its line-format record — the streaming unit
/// [`write_trace`] is built on, so event sources can be serialized one
/// event at a time in O(1) memory.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_event<W: Write>(mut w: W, ev: &TraceEvent) -> std::io::Result<()> {
    let mut sink = IoFmt {
        w: &mut w,
        err: None,
    };
    match format_event(&mut sink, ev) {
        Ok(()) => Ok(()),
        Err(_) => Err(sink
            .err
            .unwrap_or_else(|| std::io::Error::other("formatting failed"))),
    }
}

/// `fmt::Write` adapter over an `io::Write`, capturing the first I/O
/// error (the `fmt::Error` carries no payload).
struct IoFmt<'a, W: Write> {
    w: &'a mut W,
    err: Option<std::io::Error>,
}

impl<W: Write> fmt::Write for IoFmt<'_, W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.w.write_all(s.as_bytes()).map_err(|e| {
            self.err = Some(e);
            fmt::Error
        })
    }
}

/// Formats one event as its line-format record (trailing newline
/// included) — the shared formatting core of [`write_event`] and
/// [`TraceWriter`].
fn format_event<O: fmt::Write>(out: &mut O, ev: &TraceEvent) -> fmt::Result {
    match ev {
        TraceEvent::Branch { tid, rec } => writeln!(
            out,
            "B {} {:x} {} {} {:x} {} {}",
            tid,
            rec.pc.raw(),
            kind_code(rec.kind),
            rec.taken as u8,
            rec.target.raw(),
            rec.ilen,
            rec.gap
        ),
        TraceEvent::ContextSwitch { tid, entity } => writeln!(out, "C {} {}", tid, entity.0),
        TraceEvent::ModeSwitch { tid, kernel } => writeln!(out, "M {} {}", tid, *kernel as u8),
        TraceEvent::Interrupt { tid } => writeln!(out, "I {}", tid),
    }
}

/// Streaming line-format writer with a reused formatting buffer: each
/// event is formatted into one scratch `String` (a single allocation for
/// the stream's lifetime) and written with one `write_all`, instead of
/// allocating/formatting piecewise per line. Output is byte-identical to
/// [`write_header`] + [`write_event`].
///
/// ```
/// use stbpu_trace::serialize::{read_trace, TraceWriter};
/// use stbpu_trace::{TraceGenerator, WorkloadProfile};
///
/// let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).generate(100);
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf);
/// w.header(&t.name, Some(t.branch_count() as u64), t.thread_count()).unwrap();
/// for ev in t.events() {
///     w.event(ev).unwrap();
/// }
/// assert_eq!(read_trace(buf.as_slice()).unwrap().events(), t.events());
/// ```
pub struct TraceWriter<W: Write> {
    w: W,
    scratch: String,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `w` (pass a `BufWriter` for unbuffered sinks).
    pub fn new(w: W) -> Self {
        TraceWriter {
            w,
            scratch: String::with_capacity(64),
        }
    }

    /// Writes the metadata header block (see [`write_header`]).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn header(
        &mut self,
        name: &str,
        branches: Option<u64>,
        threads: usize,
    ) -> std::io::Result<()> {
        write_header(&mut self.w, name, branches, threads)
    }

    /// Writes one event line, reusing the internal scratch buffer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn event(&mut self, ev: &TraceEvent) -> std::io::Result<()> {
        self.scratch.clear();
        // Writing to a String is infallible.
        let _ = format_event(&mut self.scratch, ev);
        self.w.write_all(self.scratch.as_bytes())
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }

    /// Unwraps the underlying writer (does not flush).
    pub fn into_inner(self) -> W {
        self.w
    }
}

fn parse_event(line: &str, ln: usize) -> Result<TraceEvent, ParseTraceError> {
    let err = |msg: &str| ParseTraceError {
        line: ln,
        msg: msg.to_string(),
    };
    let mut parts = line.split_ascii_whitespace();
    let tag = parts.next().ok_or_else(|| err("empty record"))?;
    let mut next = || parts.next().ok_or_else(|| err("missing field"));
    Ok(match tag {
        "B" => {
            let tid: u8 = next()?.parse().map_err(|_| err("bad tid"))?;
            let pc = u64::from_str_radix(next()?, 16).map_err(|_| err("bad pc"))?;
            let kind = kind_from(next()?).ok_or_else(|| err("bad kind"))?;
            let taken = next()? == "1";
            let target = u64::from_str_radix(next()?, 16).map_err(|_| err("bad target"))?;
            let ilen: u8 = next()?.parse().map_err(|_| err("bad ilen"))?;
            let gap: u16 = next()?.parse().map_err(|_| err("bad gap"))?;
            TraceEvent::Branch {
                tid,
                rec: BranchRecord {
                    pc: VirtAddr::new(pc),
                    kind,
                    taken,
                    target: VirtAddr::new(target),
                    ilen,
                    gap,
                },
            }
        }
        "C" => {
            let tid: u8 = next()?.parse().map_err(|_| err("bad tid"))?;
            let e: u32 = next()?.parse().map_err(|_| err("bad entity"))?;
            TraceEvent::ContextSwitch {
                tid,
                entity: EntityId(e),
            }
        }
        "M" => {
            let tid: u8 = next()?.parse().map_err(|_| err("bad tid"))?;
            let k = next()? == "1";
            TraceEvent::ModeSwitch { tid, kernel: k }
        }
        "I" => {
            let tid: u8 = next()?.parse().map_err(|_| err("bad tid"))?;
            TraceEvent::Interrupt { tid }
        }
        other => return Err(err(&format!("unknown record '{other}'"))),
    })
}

/// Streaming line-format reader: a buffered [`crate::EventSource`] parsing
/// one line per pulled event, so file size never bounds memory.
///
/// Metadata headers (`# trace`, `# branches`, `# threads`) written by
/// [`write_trace`] are consumed eagerly at construction (they lead the
/// file), populating the declared source metadata; header lines appearing
/// later in the stream are still honored as they are reached.
///
/// ```
/// use stbpu_trace::serialize::{write_trace, TraceReader};
/// use stbpu_trace::{EventSource, TraceGenerator, WorkloadProfile};
///
/// let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).generate(200);
/// let mut buf = Vec::new();
/// write_trace(&t, &mut buf).unwrap();
///
/// let mut src = TraceReader::new(buf.as_slice()).unwrap();
/// assert_eq!(src.name(), t.name);
/// assert_eq!(src.branch_hint(), Some(200));
/// assert_eq!(src.collect_trace().unwrap().events(), t.events());
/// ```
pub struct TraceReader<R: BufRead> {
    reader: R,
    name: String,
    branch_hint: Option<u64>,
    threads: usize,
    line_no: usize,
    /// Reused line buffer: one allocation serves the whole stream (the
    /// old reader built a fresh `String` per line, which dominated the
    /// `trace generate`/`convert` profiles).
    scratch: String,
    /// True when `scratch` holds an unconsumed record line (read while
    /// skipping the leading header block).
    pending: bool,
    done: bool,
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps `reader`, eagerly consuming the leading header/comment block
    /// so name and metadata are available before the first event.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] when the header block cannot be read.
    pub fn new(reader: R) -> Result<Self, ParseTraceError> {
        let mut tr = TraceReader {
            reader,
            name: "unnamed".to_string(),
            branch_hint: None,
            threads: 0,
            line_no: 0,
            scratch: String::new(),
            pending: false,
            done: false,
        };
        // Skip the leading comment/blank block, recording metadata.
        loop {
            if !tr.fill_line()? {
                tr.done = true;
                break;
            }
            if tr.absorb_scratch_header()? {
                continue;
            }
            tr.pending = true;
            break;
        }
        Ok(tr)
    }

    /// Reads the next non-empty line into `scratch`; false at EOF.
    fn fill_line(&mut self) -> Result<bool, ParseTraceError> {
        loop {
            self.scratch.clear();
            self.line_no += 1;
            let n = self
                .reader
                .read_line(&mut self.scratch)
                .map_err(|e| ParseTraceError {
                    line: self.line_no,
                    msg: e.to_string(),
                })?;
            if n == 0 {
                return Ok(false);
            }
            if !self.scratch.trim().is_empty() {
                return Ok(true);
            }
        }
    }

    /// [`Self::absorb_header`] over the current `scratch` line (the
    /// borrow is released before any metadata field is written).
    fn absorb_scratch_header(&mut self) -> Result<bool, ParseTraceError> {
        let line = std::mem::take(&mut self.scratch);
        let ln = self.line_no;
        let absorbed = self.absorb_header(line.trim(), ln);
        self.scratch = line;
        absorbed
    }

    /// Processes a header/comment line (`Ok(true)`); `Ok(false)` for
    /// record lines. A recognized metadata header with an unparsable value
    /// is a hard error, like a malformed record.
    fn absorb_header(&mut self, line: &str, ln: usize) -> Result<bool, ParseTraceError> {
        let err = |msg: &str| ParseTraceError {
            line: ln,
            msg: msg.to_string(),
        };
        if let Some(rest) = line.strip_prefix("# trace ") {
            self.name = rest.to_string();
            return Ok(true);
        }
        if let Some(rest) = line.strip_prefix("# branches ") {
            let value = rest.trim();
            self.branch_hint = Some(value.parse().map_err(|_| {
                err(&format!(
                    "bad '# branches' header: value '{value}' is not a branch count"
                ))
            })?);
            return Ok(true);
        }
        if let Some(rest) = line.strip_prefix("# threads ") {
            let value = rest.trim();
            self.threads = value.parse().map_err(|_| {
                err(&format!(
                    "bad '# threads' header: value '{value}' is not a thread count"
                ))
            })?;
            return Ok(true);
        }
        // A metadata header with its value missing entirely (the trailing
        // space is trimmed away with it) is malformed, not a comment.
        if matches!(line, "# trace" | "# branches" | "# threads") {
            return Err(err(&format!("bad '{line}' header: missing value")));
        }
        Ok(line.starts_with('#'))
    }

    /// Pulls the next event (typed error, used by [`read_trace`]).
    pub fn next_record(&mut self) -> Result<Option<TraceEvent>, ParseTraceError> {
        if self.done {
            return Ok(None);
        }
        loop {
            if !self.pending && !self.fill_line()? {
                self.done = true;
                return Ok(None);
            }
            self.pending = false;
            if self.absorb_scratch_header()? {
                continue;
            }
            return parse_event(self.scratch.trim(), self.line_no).map(Some);
        }
    }
}

impl<R: BufRead> EventSource for TraceReader<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn thread_count(&self) -> usize {
        self.threads
    }

    fn branch_hint(&self) -> Option<u64> {
        self.branch_hint
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, SourceError> {
        self.next_record().map_err(SourceError::from)
    }
}

/// Reads a whole trace from the line format (materializing wrapper over
/// [`TraceReader`]).
///
/// # Errors
///
/// Returns [`ParseTraceError`] on malformed lines; I/O errors are reported
/// as parse errors carrying the line number.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
    let mut reader = TraceReader::new(r)?;
    let mut trace = Trace::new(&reader.name);
    while let Some(ev) = reader.next_record()? {
        trace.push(ev);
    }
    // The name may have been refined by a late `# trace` header.
    trace.name = reader.name;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadProfile};

    #[test]
    fn roundtrip_preserves_everything() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 5).generate(2_000);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let back = read_trace(buf.as_slice()).expect("parse");
        assert_eq!(back.name, t.name);
        assert_eq!(back.events(), t.events());
        assert_eq!(back.branch_count(), 2_000);
    }

    #[test]
    fn reader_streams_with_declared_metadata() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 5).generate(300);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write");
        let mut src = TraceReader::new(buf.as_slice()).expect("header");
        assert_eq!(src.name(), t.name);
        assert_eq!(src.branch_hint(), Some(300));
        assert_eq!(src.thread_count(), t.thread_count());
        let back = src.collect_trace().expect("stream");
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn malformed_metadata_headers_are_hard_errors() {
        let e = TraceReader::new("# branches 3O00\nI 0\n".as_bytes())
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("bad '# branches'"), "{e}");
        assert!(e.to_string().contains("line 1"), "{e}");
        let e = TraceReader::new("# threads x\n".as_bytes())
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("bad '# threads'"), "{e}");
        // Free-form comments are still skipped.
        assert!(TraceReader::new("# threadsafe note\n# branches-ish\n".as_bytes()).is_ok());
    }

    #[test]
    fn bad_branches_header_reports_value_and_line() {
        // Leading comments push the bad header off line 1, proving the
        // reported line number is tracked, not hard-coded.
        let e = TraceReader::new("# trace x\n\n# branches 3O00\n".as_bytes())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(e.line(), 3, "{e}");
        assert!(e.message().contains("'3O00'"), "{e}");
        assert!(e.to_string().contains("line 3"), "{e}");
    }

    #[test]
    fn bad_threads_header_reports_value_and_line() {
        let e = TraceReader::new("# trace x\n# threads -2\n".as_bytes())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(e.line(), 2, "{e}");
        assert!(e.message().contains("'-2'"), "{e}");
    }

    #[test]
    fn empty_header_values_report_line() {
        // `# branches ` with nothing after the space trims to a valueless
        // header — malformed, not a skippable comment.
        let e = TraceReader::new("# branches \n".as_bytes())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(e.line(), 1);
        assert!(e.message().contains("missing value"), "{e}");
        let mut src = TraceReader::new("I 0\n# threads\n".as_bytes()).expect("header");
        assert!(src.next_record().unwrap().is_some());
        let e = src.next_record().map(|_| ()).unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.message().contains("'# threads'"), "{e}");
    }

    #[test]
    fn late_malformed_header_reports_mid_stream_line() {
        // Headers appearing after records are still parsed — and still
        // report their own line on error.
        let mut src = TraceReader::new("I 0\nI 1\n# branches nine\n".as_bytes()).expect("header");
        assert!(src.next_record().unwrap().is_some());
        assert!(src.next_record().unwrap().is_some());
        let e = src.next_record().unwrap_err();
        assert_eq!(e.line(), 3, "{e}");
        assert!(e.message().contains("'nine'"), "{e}");
    }

    #[test]
    fn fractional_branch_counts_rejected() {
        let e = TraceReader::new("# branches 12.5\n".as_bytes())
            .map(|_| ())
            .unwrap_err();
        assert!(e.message().contains("'12.5'"), "{e}");
    }

    #[test]
    fn headerless_files_have_no_hints() {
        let src = TraceReader::new("I 1\n".as_bytes()).expect("header");
        assert_eq!(src.name(), "unnamed");
        assert_eq!(src.branch_hint(), None);
        assert_eq!(src.thread_count(), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_trace("B 0 zz cc 1 40 4 0".as_bytes()).is_err());
        assert!(read_trace("X 0".as_bytes()).is_err());
        assert!(read_trace("B 0 40".as_bytes()).is_err());
        let e = read_trace("Q".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }

    #[test]
    fn malformed_line_number_is_exact_mid_file() {
        let e = read_trace("# trace x\nI 0\nB 0 zz cc 1 40 4 0\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = read_trace("# comment\n\nI 1\n".as_bytes()).expect("parse");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn late_headers_still_rename() {
        let t = read_trace("I 0\n# trace late\nI 1\n".as_bytes()).expect("parse");
        assert_eq!(t.name, "late");
        assert_eq!(t.len(), 2);
    }
}

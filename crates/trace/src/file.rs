//! Trace-file opening with on-disk format auto-detection.
//!
//! Three formats live on disk: the human-readable line format
//! ([`crate::serialize`]), the compact binary `.stbt` format
//! ([`crate::binfmt`]), and the CBP-style championship `.cbp` format
//! ([`crate::cbp`]). The first four bytes decide which one a file is —
//! a binary trace always starts with the `"STBT"` magic and a cbp trace
//! with `"CBPT"`, neither of which can lead a valid line-format file —
//! so consumers ask [`open_trace_file`] and get a streaming
//! [`EventSource`] any way.

use crate::binfmt::{BinTraceReader, MAGIC};
use crate::cbp::CbpReader;
use crate::event::TraceEvent;
use crate::serialize::TraceReader;
use crate::source::{EventSource, SourceError};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

/// Which on-disk trace format a file holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFileFormat {
    /// The line-oriented text format (`B <tid> <pc> …`).
    Line,
    /// The compact binary `.stbt` format.
    Binary,
    /// The CBP-style championship `.cbp` format.
    Cbp,
}

impl TraceFileFormat {
    /// The conventional format for a path: `.stbt` means binary,
    /// `.cbp` the championship format, anything else line.
    pub fn from_extension(path: &Path) -> TraceFileFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("stbt") => TraceFileFormat::Binary,
            Some("cbp") => TraceFileFormat::Cbp,
            _ => TraceFileFormat::Line,
        }
    }
}

impl fmt::Display for TraceFileFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceFileFormat::Line => "line",
            TraceFileFormat::Binary => "binary",
            TraceFileFormat::Cbp => "cbp",
        })
    }
}

/// Classifies four leading bytes: binary for the full `"STBT"` magic,
/// cbp for `"CBPT"`, line for everything else (including short reads).
fn classify_magic(magic: &[u8]) -> TraceFileFormat {
    if magic == MAGIC {
        TraceFileFormat::Binary
    } else if magic == crate::cbp::MAGIC {
        TraceFileFormat::Cbp
    } else {
        TraceFileFormat::Line
    }
}

/// Reads up to four leading bytes from `r` and classifies them by magic.
fn sniff_magic<R: Read>(r: &mut R) -> std::io::Result<TraceFileFormat> {
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < magic.len() {
        let n = r.read(&mut magic[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(classify_magic(&magic[..got]))
}

/// Sniffs a file's trace format from its leading magic bytes. Files
/// shorter than the magic (including empty files) are classified as line
/// format — the line reader treats them as empty traces.
///
/// # Errors
///
/// Propagates I/O errors from opening or reading the file.
pub fn detect_format(path: &Path) -> std::io::Result<TraceFileFormat> {
    sniff_magic(&mut File::open(path)?)
}

/// A streaming [`EventSource`] over a trace file of either format,
/// selected by magic sniffing at open time.
///
/// ```no_run
/// use stbpu_trace::{open_trace_file, EventSource};
///
/// let mut src = open_trace_file(std::path::Path::new("capture.stbt")).unwrap();
/// println!("{} declares {:?} branches", src.name(), src.branch_hint());
/// ```
pub enum TraceFileSource {
    /// A line-format file (buffered text reader).
    Line(TraceReader<BufReader<File>>),
    /// A binary `.stbt` file (the reader buffers internally; boxed — it
    /// carries per-thread delta state much larger than the line variant).
    Binary(Box<BinTraceReader<File>>),
    /// A CBP-style `.cbp` file (boxed for its internal decode buffer).
    Cbp(Box<CbpReader<File>>),
}

impl TraceFileSource {
    /// The format that was detected at open time.
    pub fn format(&self) -> TraceFileFormat {
        match self {
            TraceFileSource::Line(_) => TraceFileFormat::Line,
            TraceFileSource::Binary(_) => TraceFileFormat::Binary,
            TraceFileSource::Cbp(_) => TraceFileFormat::Cbp,
        }
    }
}

/// Opens `path` as a streaming event source, auto-detecting line vs
/// binary format by magic.
///
/// # Errors
///
/// Returns [`SourceError`] when the file cannot be opened (with the path
/// in the message) or its header is malformed.
pub fn open_trace_file(path: &Path) -> Result<TraceFileSource, SourceError> {
    use std::io::{Seek, SeekFrom};
    let ctx = |e: String| SourceError(format!("{}: {e}", path.display()));
    // One handle for sniff and read: no second open to race against the
    // path changing underneath us.
    let mut file = File::open(path).map_err(|e| ctx(e.to_string()))?;
    let format = sniff_magic(&mut file).map_err(|e| ctx(e.to_string()))?;
    file.seek(SeekFrom::Start(0))
        .map_err(|e| ctx(e.to_string()))?;
    Ok(match format {
        TraceFileFormat::Line => TraceFileSource::Line(
            TraceReader::new(BufReader::new(file)).map_err(|e| ctx(e.to_string()))?,
        ),
        TraceFileFormat::Binary => TraceFileSource::Binary(Box::new(
            BinTraceReader::new(file).map_err(|e| ctx(e.to_string()))?,
        )),
        TraceFileFormat::Cbp => TraceFileSource::Cbp(Box::new(
            CbpReader::new(file).map_err(|e| ctx(e.to_string()))?,
        )),
    })
}

impl EventSource for TraceFileSource {
    fn name(&self) -> &str {
        match self {
            TraceFileSource::Line(r) => r.name(),
            TraceFileSource::Binary(r) => r.name(),
            TraceFileSource::Cbp(r) => r.name(),
        }
    }

    fn thread_count(&self) -> usize {
        match self {
            TraceFileSource::Line(r) => r.thread_count(),
            TraceFileSource::Binary(r) => r.thread_count(),
            TraceFileSource::Cbp(r) => r.thread_count(),
        }
    }

    fn branch_hint(&self) -> Option<u64> {
        match self {
            TraceFileSource::Line(r) => r.branch_hint(),
            TraceFileSource::Binary(r) => r.branch_hint(),
            TraceFileSource::Cbp(r) => r.branch_hint(),
        }
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, SourceError> {
        match self {
            TraceFileSource::Line(r) => r.next_event(),
            TraceFileSource::Binary(r) => r.next_event(),
            TraceFileSource::Cbp(r) => r.next_event(),
        }
    }

    fn next_batch(&mut self, buf: &mut Vec<TraceEvent>, max: usize) -> Result<usize, SourceError> {
        match self {
            TraceFileSource::Line(r) => r.next_batch(buf, max),
            TraceFileSource::Binary(r) => r.next_batch(buf, max),
            TraceFileSource::Cbp(r) => r.next_batch(buf, max),
        }
    }
}

/// A streaming [`EventSource`] over a non-seekable trace byte stream
/// (stdin, a pipe, a socket) of either format — the [`TraceFileSource`]
/// counterpart for inputs that have no path and no known size. The magic
/// bytes consumed by sniffing are spliced back in front of the remaining
/// stream, so the reader sees the bytes from offset 0.
pub enum TraceStreamSource<R: Read> {
    /// A line-format stream (buffered text reader).
    Line(TraceReader<BufReader<std::io::Chain<std::io::Cursor<Vec<u8>>, R>>>),
    /// A binary `.stbt` stream (the reader buffers internally; boxed — it
    /// carries per-thread delta state much larger than the line variant).
    Binary(Box<BinTraceReader<std::io::Chain<std::io::Cursor<Vec<u8>>, R>>>),
    /// A CBP-style `.cbp` stream (boxed for its internal decode buffer).
    Cbp(Box<CbpReader<std::io::Chain<std::io::Cursor<Vec<u8>>, R>>>),
}

impl<R: Read> TraceStreamSource<R> {
    /// The format that was detected at open time.
    pub fn format(&self) -> TraceFileFormat {
        match self {
            TraceStreamSource::Line(_) => TraceFileFormat::Line,
            TraceStreamSource::Binary(_) => TraceFileFormat::Binary,
            TraceStreamSource::Cbp(_) => TraceFileFormat::Cbp,
        }
    }
}

/// Opens an arbitrary byte stream as a trace event source, auto-detecting
/// line vs binary format by magic — [`open_trace_file`] for inputs that
/// cannot be reopened or seeked (stdin via `-`, pipes, sockets). `label`
/// names the stream in error messages the way the file path does for
/// files.
///
/// # Errors
///
/// Returns [`SourceError`] when the stream cannot be read or its header
/// is malformed.
pub fn open_trace_stream<R: Read>(
    mut r: R,
    label: &str,
) -> Result<TraceStreamSource<R>, SourceError> {
    let ctx = |e: String| SourceError(format!("{label}: {e}"));
    // Sniff by hand: unlike the file path there is no seeking back, so
    // the consumed bytes are chained back in front of the remainder.
    let mut sniffed = Vec::with_capacity(4);
    let mut byte = [0u8; 1];
    while sniffed.len() < 4 {
        let n = r.read(&mut byte).map_err(|e| ctx(e.to_string()))?;
        if n == 0 {
            break;
        }
        sniffed.push(byte[0]);
    }
    let format = classify_magic(&sniffed);
    let full = std::io::Cursor::new(sniffed).chain(r);
    Ok(match format {
        TraceFileFormat::Line => TraceStreamSource::Line(
            TraceReader::new(BufReader::new(full)).map_err(|e| ctx(e.to_string()))?,
        ),
        TraceFileFormat::Binary => TraceStreamSource::Binary(Box::new(
            BinTraceReader::new(full).map_err(|e| ctx(e.to_string()))?,
        )),
        TraceFileFormat::Cbp => TraceStreamSource::Cbp(Box::new(
            CbpReader::new(full).map_err(|e| ctx(e.to_string()))?,
        )),
    })
}

impl<R: Read> EventSource for TraceStreamSource<R> {
    fn name(&self) -> &str {
        match self {
            TraceStreamSource::Line(r) => r.name(),
            TraceStreamSource::Binary(r) => r.name(),
            TraceStreamSource::Cbp(r) => r.name(),
        }
    }

    fn thread_count(&self) -> usize {
        match self {
            TraceStreamSource::Line(r) => r.thread_count(),
            TraceStreamSource::Binary(r) => r.thread_count(),
            TraceStreamSource::Cbp(r) => r.thread_count(),
        }
    }

    fn branch_hint(&self) -> Option<u64> {
        match self {
            TraceStreamSource::Line(r) => r.branch_hint(),
            TraceStreamSource::Binary(r) => r.branch_hint(),
            TraceStreamSource::Cbp(r) => r.branch_hint(),
        }
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, SourceError> {
        match self {
            TraceStreamSource::Line(r) => r.next_event(),
            TraceStreamSource::Binary(r) => r.next_event(),
            TraceStreamSource::Cbp(r) => r.next_event(),
        }
    }

    fn next_batch(&mut self, buf: &mut Vec<TraceEvent>, max: usize) -> Result<usize, SourceError> {
        match self {
            TraceStreamSource::Line(r) => r.next_batch(buf, max),
            TraceStreamSource::Binary(r) => r.next_batch(buf, max),
            TraceStreamSource::Cbp(r) => r.next_batch(buf, max),
        }
    }
}

/// A streaming trace writer for either on-disk format, selected at
/// construction — the writing counterpart of [`TraceFileSource`]. The
/// `header`/`event`/`flush` surface mirrors
/// [`crate::serialize::TraceWriter`] and [`crate::binfmt::BinTraceWriter`],
/// so call sites serialize a stream without caring which format was
/// requested.
pub enum TraceFileWriter<W: std::io::Write> {
    /// Line-format output.
    Line(crate::serialize::TraceWriter<W>),
    /// Binary `.stbt` output (boxed — the encoder's per-thread delta
    /// state dwarfs the line variant).
    Binary(Box<crate::binfmt::BinTraceWriter<W>>),
    /// CBP-style `.cbp` output. The format carries no name or thread
    /// count (both header arguments are discarded) and represents only
    /// branch events — see [`crate::cbp::CbpWriter::event`].
    Cbp(crate::cbp::CbpWriter<W>),
}

impl<W: std::io::Write> TraceFileWriter<W> {
    /// A writer emitting `format` into `w` (pass a `BufWriter` for
    /// unbuffered sinks).
    pub fn new(format: TraceFileFormat, w: W) -> Self {
        match format {
            TraceFileFormat::Line => TraceFileWriter::Line(crate::serialize::TraceWriter::new(w)),
            TraceFileFormat::Binary => {
                TraceFileWriter::Binary(Box::new(crate::binfmt::BinTraceWriter::new(w)))
            }
            TraceFileFormat::Cbp => TraceFileWriter::Cbp(crate::cbp::CbpWriter::new(w)),
        }
    }

    /// The format being written.
    pub fn format(&self) -> TraceFileFormat {
        match self {
            TraceFileWriter::Line(_) => TraceFileFormat::Line,
            TraceFileWriter::Binary(_) => TraceFileFormat::Binary,
            TraceFileWriter::Cbp(_) => TraceFileFormat::Cbp,
        }
    }

    /// Writes the format's metadata header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn header(
        &mut self,
        name: &str,
        branches: Option<u64>,
        threads: usize,
    ) -> std::io::Result<()> {
        match self {
            TraceFileWriter::Line(w) => w.header(name, branches, threads),
            TraceFileWriter::Binary(w) => w.header(name, branches, threads),
            TraceFileWriter::Cbp(w) => w.header(branches),
        }
    }

    /// Writes one event record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn event(&mut self, ev: &TraceEvent) -> std::io::Result<()> {
        match self {
            TraceFileWriter::Line(w) => w.event(ev),
            TraceFileWriter::Binary(w) => w.event(ev),
            TraceFileWriter::Cbp(w) => w.event(ev),
        }
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        match self {
            TraceFileWriter::Line(w) => w.flush(),
            TraceFileWriter::Binary(w) => w.flush(),
            TraceFileWriter::Cbp(w) => w.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binfmt::write_bin_trace;
    use crate::serialize::write_trace;
    use crate::{TraceGenerator, WorkloadProfile};

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("stbpu-file-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    #[test]
    fn both_formats_detected_and_stream_identically() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 4).generate(400);
        let (line, bin) = (scratch("t.trace"), scratch("t.stbt"));
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        std::fs::write(&line, &buf).unwrap();
        buf.clear();
        write_bin_trace(&t, &mut buf).unwrap();
        std::fs::write(&bin, &buf).unwrap();

        assert_eq!(detect_format(&line).unwrap(), TraceFileFormat::Line);
        assert_eq!(detect_format(&bin).unwrap(), TraceFileFormat::Binary);

        let mut l = open_trace_file(&line).unwrap();
        let mut b = open_trace_file(&bin).unwrap();
        assert_eq!(l.format(), TraceFileFormat::Line);
        assert_eq!(b.format(), TraceFileFormat::Binary);
        assert_eq!(l.branch_hint(), b.branch_hint());
        let lt = l.collect_trace().unwrap();
        let bt = b.collect_trace().unwrap();
        assert_eq!(lt.events(), bt.events());
        assert_eq!(lt.events(), t.events());
    }

    #[test]
    fn short_and_empty_files_fall_back_to_line() {
        let p = scratch("short.trace");
        std::fs::write(&p, b"I 0").unwrap();
        assert_eq!(detect_format(&p).unwrap(), TraceFileFormat::Line);
        std::fs::write(&p, b"").unwrap();
        assert_eq!(detect_format(&p).unwrap(), TraceFileFormat::Line);
        let mut src = open_trace_file(&p).unwrap();
        assert!(src.next_event().unwrap().is_none());
    }

    #[test]
    fn extension_convention_and_format_writer_agree() {
        use std::path::Path;
        assert_eq!(
            TraceFileFormat::from_extension(Path::new("a/b/cap.stbt")),
            TraceFileFormat::Binary
        );
        assert_eq!(
            TraceFileFormat::from_extension(Path::new("cap.trace")),
            TraceFileFormat::Line
        );
        assert_eq!(
            TraceFileFormat::from_extension(Path::new("noext")),
            TraceFileFormat::Line
        );

        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 2).generate(150);
        for format in [TraceFileFormat::Line, TraceFileFormat::Binary] {
            let mut buf = Vec::new();
            let mut w = TraceFileWriter::new(format, &mut buf);
            assert_eq!(w.format(), format);
            w.header(&t.name, Some(t.branch_count() as u64), t.thread_count())
                .unwrap();
            for ev in t.events() {
                w.event(ev).unwrap();
            }
            w.flush().unwrap();
            drop(w);
            let p = scratch(&format!("fw.{format}"));
            std::fs::write(&p, &buf).unwrap();
            assert_eq!(detect_format(&p).unwrap(), format);
            let mut src = open_trace_file(&p).unwrap();
            assert_eq!(src.collect_trace().unwrap().events(), t.events());
        }
    }

    #[test]
    fn streams_without_paths_detect_and_decode_both_formats() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 4).generate(300);
        let mut line = Vec::new();
        write_trace(&t, &mut line).unwrap();
        let mut bin = Vec::new();
        write_bin_trace(&t, &mut bin).unwrap();

        // Read-only byte streams: no path, no seek, no size.
        let mut l = open_trace_stream(line.as_slice(), "<stdin>").unwrap();
        assert_eq!(l.format(), TraceFileFormat::Line);
        let mut b = open_trace_stream(bin.as_slice(), "<stdin>").unwrap();
        assert_eq!(b.format(), TraceFileFormat::Binary);
        assert_eq!(l.branch_hint(), b.branch_hint());
        assert_eq!(l.collect_trace().unwrap().events(), t.events());
        assert_eq!(b.collect_trace().unwrap().events(), t.events());

        // Shorter than the magic: falls back to line, streams empty.
        let mut s = open_trace_stream(&b"I 0"[..], "<pipe>").unwrap();
        assert_eq!(s.format(), TraceFileFormat::Line);
        assert!(matches!(
            s.next_event().unwrap(),
            Some(TraceEvent::Interrupt { tid: 0 })
        ));

        // Errors carry the label instead of a path.
        let bad = b"STBT\xff\xff garbage";
        let e = open_trace_stream(&bad[..], "<stdin>")
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("<stdin>"), "{e}");
    }

    #[test]
    fn cbp_files_and_streams_are_detected_and_decoded() {
        use crate::cbp::write_cbp_trace;
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 6).generate(250);
        let mut bytes = Vec::new();
        write_cbp_trace(&t, &mut bytes).unwrap();
        let p = scratch("t.cbp");
        std::fs::write(&p, &bytes).unwrap();

        assert_eq!(
            TraceFileFormat::from_extension(Path::new("cap.cbp")),
            TraceFileFormat::Cbp
        );
        assert_eq!(detect_format(&p).unwrap(), TraceFileFormat::Cbp);
        let mut src = open_trace_file(&p).unwrap();
        assert_eq!(src.format(), TraceFileFormat::Cbp);
        assert_eq!(src.branch_hint(), Some(250));
        assert_eq!(src.thread_count(), 1);
        let file_t = src.collect_trace().unwrap();
        assert_eq!(file_t.branch_count(), 250);

        let mut stream = open_trace_stream(bytes.as_slice(), "<stdin>").unwrap();
        assert_eq!(stream.format(), TraceFileFormat::Cbp);
        assert_eq!(stream.collect_trace().unwrap().events(), file_t.events());

        // The format writer wrapper produces the same bytes.
        let mut buf = Vec::new();
        let mut w = TraceFileWriter::new(TraceFileFormat::Cbp, &mut buf);
        assert_eq!(w.format(), TraceFileFormat::Cbp);
        w.header(&t.name, Some(t.branch_count() as u64), t.thread_count())
            .unwrap();
        for ev in t.events() {
            w.event(ev).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        assert_eq!(buf, bytes);

        // A cbp header with drifted bytes fails with the stream label.
        let e = open_trace_stream(&b"CBPT\x09\x00\x00\x00"[..], "<stdin>")
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("<stdin>"), "{e}");
    }

    #[test]
    fn missing_file_error_carries_path() {
        let e = open_trace_file(Path::new("/nonexistent/x.stbt"))
            .map(|_| ())
            .unwrap_err();
        assert!(e.to_string().contains("/nonexistent/x.stbt"), "{e}");
    }
}

//! Basic-block-vector (BBV) extraction — the profiling pass behind
//! SimPoint-style phase clustering.
//!
//! The SimPoint methodology (Sherwood et al.) observes that long program
//! executions cycle through a small number of *phases*, and that a cheap
//! structural fingerprint — how often each basic block executes inside a
//! fixed-size slice of the run — identifies them without simulating
//! anything. This module computes that fingerprint over any
//! [`EventSource`]: the stream is split into consecutive slices of
//! [`BbvProfile::slice_branches`] branch events each, and every slice
//! gets a sparse vector mapping branch PC → instructions attributed to
//! that block (`1 + gap` per branch event, i.e. the branch itself plus
//! the straight-line instructions leading to it).
//!
//! Slice boundaries follow the shard-cut convention
//! (`stbpu_engine::cut_checkpoints`): a slice closes immediately after
//! the branch event that fills it, and trailing non-branch events belong
//! to the next slice — so a slice's `(start_branch, start_event)`
//! coordinates can seed both a warm checkpoint cut and a cold
//! [`EventSource::skip_events`] reposition.
//!
//! The extraction is a single streaming pass in O(distinct blocks)
//! memory, reads no clocks, iterates no hash-ordered containers
//! ([`std::collections::BTreeMap`] keeps vectors ordered), and never
//! panics on any input — it sits inside the `stbpu analyze` wall-clock,
//! determinism and panic-freedom lint scopes.

use crate::event::TraceEvent;
use crate::source::{EventSource, SourceError};
use std::collections::BTreeMap;

/// Default slice size in branch events (the SimPoint-classic 100k).
pub const DEFAULT_SLICE_BRANCHES: u64 = 100_000;

/// Events pulled per batch while streaming (matches the shard driver).
const BBV_BATCH: usize = 4_096;

/// One fixed-size slice of the stream and its basic-block vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SliceProfile {
    /// 0-based slice index.
    pub index: u64,
    /// Branch events consumed before this slice starts.
    pub start_branch: u64,
    /// Trace events (all kinds) consumed before this slice starts — the
    /// [`EventSource::skip_events`] count that repositions a fresh stream
    /// at the slice boundary.
    pub start_event: u64,
    /// Branch events in this slice (equal to the slice size except for a
    /// trailing partial slice).
    pub branches: u64,
    /// Instructions attributed to this slice (`1 + gap` per branch).
    pub instructions: u64,
    /// Sparse basic-block vector: branch PC → instructions attributed to
    /// the block ending at that PC. Ordered, so iteration is
    /// deterministic.
    pub vector: BTreeMap<u64, u64>,
}

/// The whole-stream BBV profile: every slice plus stream totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BbvProfile {
    /// Workload name the source declared.
    pub workload: String,
    /// Slice size in branch events.
    pub slice_branches: u64,
    /// Total branch events in the stream. Slice branch counts always sum
    /// to exactly this (test-enforced).
    pub total_branches: u64,
    /// Total instructions (`1 + gap` summed over every branch event).
    pub total_instructions: u64,
    /// Total trace events of all kinds.
    pub total_events: u64,
    /// The per-slice profiles, in stream order.
    pub slices: Vec<SliceProfile>,
}

/// Streams `source` to exhaustion, splitting it into slices of
/// `slice_branches` branch events and building one [`SliceProfile`] per
/// slice. A trailing partial slice (fewer branches than the slice size)
/// is kept; trailing non-branch events after the last branch are counted
/// in [`BbvProfile::total_events`] but open no empty slice.
///
/// # Errors
///
/// [`SourceError`] when `slice_branches` is zero or the source fails
/// mid-stream. Never panics.
pub fn extract_bbv(
    source: &mut dyn EventSource,
    slice_branches: u64,
) -> Result<BbvProfile, SourceError> {
    if slice_branches == 0 {
        return Err(SourceError(
            "BBV slice size must be at least 1 branch".to_string(),
        ));
    }
    let mut profile = BbvProfile {
        workload: source.name().to_string(),
        slice_branches,
        total_branches: 0,
        total_instructions: 0,
        total_events: 0,
        slices: Vec::new(),
    };
    let mut cur = SliceProfile {
        index: 0,
        start_branch: 0,
        start_event: 0,
        branches: 0,
        instructions: 0,
        vector: BTreeMap::new(),
    };
    let mut buf: Vec<TraceEvent> = Vec::new();
    loop {
        let n = source.next_batch(&mut buf, BBV_BATCH)?;
        if n == 0 {
            break;
        }
        for ev in &buf {
            profile.total_events += 1;
            if let TraceEvent::Branch { rec, .. } = ev {
                let instructions = 1 + u64::from(rec.gap);
                profile.total_branches += 1;
                profile.total_instructions += instructions;
                cur.branches += 1;
                cur.instructions += instructions;
                *cur.vector.entry(rec.pc.raw()).or_insert(0) += instructions;
                if cur.branches == slice_branches {
                    // Close the slice right after the branch that fills
                    // it; following non-branch events open the next one.
                    let next = SliceProfile {
                        index: cur.index + 1,
                        start_branch: profile.total_branches,
                        start_event: profile.total_events,
                        branches: 0,
                        instructions: 0,
                        vector: BTreeMap::new(),
                    };
                    profile.slices.push(std::mem::replace(&mut cur, next));
                }
            }
        }
    }
    // A trailing partial slice counts only if it saw a branch; a tail of
    // pure non-branch events stays in the totals but adds no slice.
    if cur.branches > 0 {
        profile.slices.push(cur);
    }
    // The source may have refined its name mid-stream (late file header).
    profile.workload = source.name().to_string();
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadProfile};

    fn sample_source(branches: usize) -> impl EventSource {
        TraceGenerator::new(&WorkloadProfile::test_profile(), 7).into_source(branches)
    }

    #[test]
    fn slice_weights_sum_to_stream_totals() {
        let mut src = sample_source(2_500);
        let p = extract_bbv(&mut src, 400).unwrap();
        assert_eq!(p.total_branches, 2_500);
        assert_eq!(p.slice_branches, 400);
        assert_eq!(p.slices.len(), 7, "6 full slices + 1 partial");
        let branch_sum: u64 = p.slices.iter().map(|s| s.branches).sum();
        let instr_sum: u64 = p.slices.iter().map(|s| s.instructions).sum();
        assert_eq!(branch_sum, p.total_branches);
        assert_eq!(instr_sum, p.total_instructions);
        for s in &p.slices {
            let v: u64 = s.vector.values().sum();
            assert_eq!(v, s.instructions, "slice {} vector mass", s.index);
        }
    }

    #[test]
    fn slice_coordinates_follow_the_cut_convention() {
        let mut src = sample_source(1_000);
        let p = extract_bbv(&mut src, 250).unwrap();
        for (i, s) in p.slices.iter().enumerate() {
            assert_eq!(s.index, i as u64);
            assert_eq!(s.start_branch, i as u64 * 250);
        }
        // start_event repositions a fresh stream exactly: skipping
        // start_event events leaves exactly (total - start_branch)
        // branches ahead.
        let s2 = &p.slices[2];
        let mut fresh = sample_source(1_000);
        assert_eq!(fresh.skip_events(s2.start_event).unwrap(), s2.start_event);
        let mut remaining = 0u64;
        while let Some(ev) = fresh.next_event().unwrap() {
            if matches!(ev, TraceEvent::Branch { .. }) {
                remaining += 1;
            }
        }
        assert_eq!(remaining, p.total_branches - s2.start_branch);
    }

    #[test]
    fn extraction_is_deterministic() {
        let a = extract_bbv(&mut sample_source(1_200), 300).unwrap();
        let b = extract_bbv(&mut sample_source(1_200), 300).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exact_multiple_yields_no_partial_slice() {
        let p = extract_bbv(&mut sample_source(900), 300).unwrap();
        assert_eq!(p.slices.len(), 3);
        assert!(p.slices.iter().all(|s| s.branches == 300));
    }

    #[test]
    fn zero_slice_size_is_an_error() {
        let err = extract_bbv(&mut sample_source(10), 0).unwrap_err();
        assert!(err.0.contains("slice size"), "{err}");
    }
}

//! The trace generator: interleaves per-process program walks with kernel
//! excursions (syscalls, interrupts, scheduler-driven context switches)
//! across one or two logical threads — the shape of a live Intel PT
//! capture of a physical core (Section VII-B1).

use crate::event::{Trace, TraceEvent};
use crate::profiles::WorkloadProfile;
use crate::program::{Program, ProgramShape, Walker};
use crate::source::{EventSource, SourceError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stbpu_bpu::EntityId;
use std::collections::VecDeque;

/// Kernel image base (inside the canonical 48-bit space).
const KERNEL_BASE: u64 = 0xffff_8000_0000;
/// Branches executed inside a syscall handler.
const SYSCALL_LEN: (u32, u32) = (25, 70);
/// Branches executed inside an interrupt handler.
const IRQ_LEN: (u32, u32) = (8, 25);
/// Branches executed by the scheduler on a context switch.
const SCHED_LEN: (u32, u32) = (40, 90);
/// Thread time-slice in branches for two-thread traces.
const THREAD_CHUNK: usize = 96;

/// Deterministic synthetic-trace generator for one workload profile.
///
/// Traces can be materialized with [`TraceGenerator::generate`] or streamed
/// with [`TraceGenerator::into_source`] — the two paths share the same
/// stepping machinery, so for equal seeds the streamed events are
/// bit-identical to the materialized vector while the stream needs only
/// O(1) memory (one kernel excursion of look-ahead).
///
/// ```
/// use stbpu_trace::{TraceGenerator, WorkloadProfile};
/// let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 1).generate(5_000);
/// assert_eq!(t.branch_count(), 5_000);
/// assert!(t.kernel_entries() > 0, "live traces include OS activity");
/// ```
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: StdRng,
    programs: Vec<Program>,
    walkers: Vec<Walker>,
    kernel_prog: Program,
    kernel_walkers: Vec<Walker>,
    /// Current process (index into `programs`) per thread.
    current: [usize; 2],
}

/// Cursor state of one in-progress trace emission (shared by the
/// materializing and streaming paths).
#[derive(Clone, Copy, Debug)]
struct StreamPlan {
    budget: usize,
    emitted: usize,
    tid: usize,
    chunk: usize,
    started: bool,
}

impl StreamPlan {
    fn new(budget: usize) -> Self {
        StreamPlan {
            budget,
            emitted: 0,
            tid: 0,
            chunk: 0,
            started: false,
        }
    }
}

impl TraceGenerator {
    /// Creates a generator for `profile` with deterministic randomness.
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(profile.name));
        let shape = ProgramShape {
            functions: profile.functions,
            blocks_per_fn: profile.blocks_per_fn,
            loop_fraction: profile.loop_fraction,
            avg_trip: profile.avg_trip,
            pattern_complexity: profile.pattern_complexity,
            taken_bias: profile.taken_bias,
            indirect_fraction: profile.indirect_fraction,
            indirect_targets: profile.indirect_targets,
            call_fraction: profile.call_fraction,
            hardness: profile.noise,
        };
        let nproc = profile.processes.max(1);
        let mut programs = Vec::with_capacity(nproc);
        let mut walkers = Vec::with_capacity(nproc);
        for p in 0..nproc {
            // Per-process ASLR-style base; identical program *shape* per
            // process of the same workload (like forked server workers).
            let base = 0x4000_0000 + (p as u64) * 0x0002_1000_0000;
            let prog = Program::build(&shape, base, &mut rng);
            let wseed = rng.gen();
            walkers.push(Walker::new(
                &prog,
                profile.call_depth,
                profile.noise * 0.5,
                wseed,
            ));
            programs.push(prog);
        }
        let kshape = ProgramShape {
            functions: 36,
            blocks_per_fn: 6,
            loop_fraction: 0.15,
            avg_trip: 6,
            pattern_complexity: 0.1,
            taken_bias: 0.75,
            indirect_fraction: 0.1,
            indirect_targets: 5,
            call_fraction: 0.22,
            hardness: 0.05,
        };
        let kernel_prog = Program::build(&kshape, KERNEL_BASE, &mut rng);
        let kernel_walkers = (0..2)
            .map(|i| Walker::new(&kernel_prog, 10, 0.04, seed ^ 0xbeef ^ i))
            .collect();
        TraceGenerator {
            profile: *profile,
            rng,
            programs,
            walkers,
            kernel_prog,
            kernel_walkers,
            current: [0, 0],
        }
    }

    /// Name of the workload profile this generator emits.
    pub fn profile_name(&self) -> &'static str {
        self.profile.name
    }

    /// Threads used by this workload's traces. A trace never occupies more
    /// threads than it has processes (each walker is owned by one thread,
    /// keeping per-thread call/return streams well nested).
    pub fn threads(&self) -> usize {
        self.profile.threads.clamp(1, 2).min(self.programs.len())
    }

    fn sample_gap(rng: &mut StdRng, mean: f64) -> u16 {
        // Exponential gaps, clamped: bursty like real instruction streams.
        let u: f64 = rng.gen::<f64>().max(1e-9);
        ((-u.ln() * mean) as u64).min(900) as u16
    }

    fn entity_for(&self, proc_idx: usize) -> EntityId {
        EntityId::user(proc_idx as u32)
    }

    /// Emits `n` kernel branches on `tid` into `out`.
    fn kernel_run(&mut self, out: &mut Vec<TraceEvent>, tid: usize, n: u32) {
        for _ in 0..n {
            let mut rec = self.kernel_walkers[tid].next(&self.kernel_prog);
            rec.gap = Self::sample_gap(&mut self.rng, 4.0);
            out.push(TraceEvent::Branch {
                tid: tid as u8,
                rec,
            });
        }
    }

    /// Advances the emission by one slice (the stream prologue or one
    /// user-branch / kernel-excursion step), appending events to `out`.
    /// Returns `false` once the branch budget is exhausted. Overshoot from
    /// the final kernel excursion is trimmed inside the slice, so the
    /// cumulative branch count lands exactly on the budget.
    fn step(&mut self, plan: &mut StreamPlan, out: &mut Vec<TraceEvent>) -> bool {
        if !plan.started {
            plan.started = true;
            // Announce the initial process on each thread (processes are
            // partitioned across threads by index parity).
            let threads = self.threads();
            let nproc = self.programs.len();
            for t in 0..threads {
                let first = (0..nproc).find(|p| p % threads == t).unwrap_or(0);
                self.current[t] = first;
                out.push(TraceEvent::ContextSwitch {
                    tid: t as u8,
                    entity: self.entity_for(first),
                });
            }
            return true;
        }
        if plan.emitted >= plan.budget {
            return false;
        }

        let threads = self.threads();
        let nproc = self.programs.len();
        let p_sys = self.profile.syscalls_per_1k / 1000.0;
        let p_ctx = self.profile.ctx_switches_per_1k / 1000.0;
        let p_irq = self.profile.interrupts_per_1k / 1000.0;

        // Thread time-slicing for two-thread traces.
        plan.chunk += 1;
        if threads == 2 && plan.chunk.is_multiple_of(THREAD_CHUNK) {
            plan.tid = 1 - plan.tid;
        }
        let tid = plan.tid;

        let roll: f64 = self.rng.gen();
        if roll < p_ctx && nproc > 1 {
            // Scheduler: kernel entry, scheduler body, switch, exit.
            out.push(TraceEvent::ModeSwitch {
                tid: tid as u8,
                kernel: true,
            });
            let n = self.rng.gen_range(SCHED_LEN.0..=SCHED_LEN.1);
            self.kernel_run(out, tid, n);
            plan.emitted += n as usize;
            // Round-robin among this thread's processes.
            let mine: Vec<usize> = (0..nproc)
                .filter(|p| p % threads == tid % threads)
                .collect();
            let pos = mine
                .iter()
                .position(|&p| p == self.current[tid])
                .unwrap_or(0);
            let next = mine[(pos + 1) % mine.len()];
            self.current[tid] = next;
            out.push(TraceEvent::ContextSwitch {
                tid: tid as u8,
                entity: self.entity_for(next),
            });
            out.push(TraceEvent::ModeSwitch {
                tid: tid as u8,
                kernel: false,
            });
        } else if roll < p_ctx + p_sys {
            out.push(TraceEvent::ModeSwitch {
                tid: tid as u8,
                kernel: true,
            });
            let n = self.rng.gen_range(SYSCALL_LEN.0..=SYSCALL_LEN.1);
            self.kernel_run(out, tid, n);
            plan.emitted += n as usize;
            out.push(TraceEvent::ModeSwitch {
                tid: tid as u8,
                kernel: false,
            });
        } else if roll < p_ctx + p_sys + p_irq {
            out.push(TraceEvent::Interrupt { tid: tid as u8 });
            out.push(TraceEvent::ModeSwitch {
                tid: tid as u8,
                kernel: true,
            });
            let n = self.rng.gen_range(IRQ_LEN.0..=IRQ_LEN.1);
            self.kernel_run(out, tid, n);
            plan.emitted += n as usize;
            out.push(TraceEvent::ModeSwitch {
                tid: tid as u8,
                kernel: false,
            });
        } else {
            let proc_idx = self.current[tid];
            let mut rec = self.walkers[proc_idx].next(&self.programs[proc_idx]);
            rec.gap = Self::sample_gap(&mut self.rng, self.profile.gap_mean);
            out.push(TraceEvent::Branch {
                tid: tid as u8,
                rec,
            });
            plan.emitted += 1;
        }

        // Trim overshoot from a final kernel excursion so the cumulative
        // branch count is exact (all excess branches live in this slice).
        while plan.emitted > plan.budget {
            let pos = out
                .iter()
                .rposition(|e| matches!(e, TraceEvent::Branch { .. }))
                .expect("overshooting slice has branches");
            out.remove(pos);
            plan.emitted -= 1;
        }
        true
    }

    /// Generates a trace containing exactly `branches` branch events
    /// (kernel branches included).
    pub fn generate(&mut self, branches: usize) -> Trace {
        let mut trace = Trace::new(self.profile.name);
        let mut plan = StreamPlan::new(branches);
        let mut slice = Vec::new();
        while self.step(&mut plan, &mut slice) {
            for ev in slice.drain(..) {
                trace.push(ev);
            }
        }
        trace
    }

    /// Converts the generator into a streaming [`EventSource`] emitting
    /// exactly `branches` branch events — generate-as-you-simulate with
    /// O(1) memory, never materializing the event vector.
    pub fn into_source(self, branches: usize) -> GeneratorSource {
        GeneratorSource {
            gen: self,
            plan: StreamPlan::new(branches),
            buf: VecDeque::new(),
        }
    }
}

/// Streaming [`EventSource`] over a [`TraceGenerator`] (see
/// [`TraceGenerator::into_source`]). Holds at most one emission slice
/// (≤ ~100 events) of look-ahead regardless of run length.
pub struct GeneratorSource {
    gen: TraceGenerator,
    plan: StreamPlan,
    /// Pending events of the current slice, drained front to back. The
    /// capacity is reused across slices — the hot path allocates nothing.
    buf: VecDeque<TraceEvent>,
}

impl GeneratorSource {
    /// Refills `buf` with the next slice; false at end of stream.
    fn refill(&mut self) -> bool {
        debug_assert!(self.buf.is_empty());
        // step() wants a Vec (it trims overshoot by position); borrow the
        // deque's storage as that Vec so its capacity is reused.
        let mut slice = Vec::from(std::mem::take(&mut self.buf));
        slice.clear();
        let more = self.gen.step(&mut self.plan, &mut slice);
        self.buf = VecDeque::from(slice);
        more
    }
}

impl EventSource for GeneratorSource {
    fn name(&self) -> &str {
        self.gen.profile_name()
    }

    fn thread_count(&self) -> usize {
        self.gen.threads()
    }

    fn branch_hint(&self) -> Option<u64> {
        Some(self.plan.budget as u64)
    }

    fn next_event(&mut self) -> Result<Option<TraceEvent>, SourceError> {
        while self.buf.is_empty() {
            if !self.refill() {
                return Ok(None);
            }
        }
        Ok(self.buf.pop_front())
    }

    fn next_batch(&mut self, buf: &mut Vec<TraceEvent>, max: usize) -> Result<usize, SourceError> {
        buf.clear();
        while buf.len() < max {
            if self.buf.is_empty() && !self.refill() {
                break;
            }
            let take = (max - buf.len()).min(self.buf.len());
            buf.extend(self.buf.drain(..take));
        }
        Ok(buf.len())
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn exact_branch_count() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).generate(1234);
        assert_eq!(t.branch_count(), 1234);
    }

    #[test]
    fn mode_switches_are_balanced() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 3).generate(5000);
        let mut depth = 0i32;
        for e in t.events() {
            match e {
                TraceEvent::ModeSwitch { kernel: true, .. } => depth += 1,
                TraceEvent::ModeSwitch { kernel: false, .. } => depth -= 1,
                _ => {}
            }
            assert!((0..=1).contains(&depth), "mode switches must not nest");
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn kernel_branches_live_in_kernel_windows() {
        let t = TraceGenerator::new(&WorkloadProfile::test_profile(), 9).generate(5000);
        let mut in_kernel = [false; 2];
        for e in t.events() {
            match e {
                TraceEvent::ModeSwitch { tid, kernel } => in_kernel[*tid as usize] = *kernel,
                TraceEvent::Branch { tid, rec } => {
                    let is_kernel_addr = rec.pc.raw() >= KERNEL_BASE;
                    assert_eq!(
                        is_kernel_addr, in_kernel[*tid as usize],
                        "kernel-address branches only in kernel mode"
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn server_profile_uses_two_threads_and_many_processes() {
        let p = profiles::by_name("apache2_prefork_c128").unwrap();
        let t = TraceGenerator::new(p, 5).generate(20_000);
        let mut tids = std::collections::HashSet::new();
        let mut entities = std::collections::HashSet::new();
        for e in t.events() {
            match e {
                TraceEvent::Branch { tid, .. } => {
                    tids.insert(*tid);
                }
                TraceEvent::ContextSwitch { entity, .. } => {
                    entities.insert(*entity);
                }
                _ => {}
            }
        }
        assert_eq!(tids.len(), 2, "server traces occupy both logical threads");
        assert!(
            entities.len() >= 4,
            "prefork spawns many workers: {}",
            entities.len()
        );
    }

    #[test]
    fn spec_trace_is_mostly_user_code() {
        let p = profiles::by_name("519.lbm").unwrap();
        let t = TraceGenerator::new(p, 5).generate(20_000);
        let kernel_branches = t
            .branches()
            .filter(|(_, r)| r.pc.raw() >= KERNEL_BASE)
            .count();
        assert!(
            (kernel_branches as f64) < 0.15 * t.branch_count() as f64,
            "compute-bound SPEC should be mostly user branches ({kernel_branches})"
        );
    }

    #[test]
    fn determinism_across_generators() {
        let p = profiles::by_name("505.mcf").unwrap();
        let a = TraceGenerator::new(p, 77).generate(3000);
        let b = TraceGenerator::new(p, 77).generate(3000);
        assert_eq!(a.events(), b.events());
        let c = TraceGenerator::new(p, 78).generate(3000);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn streamed_events_bit_identical_to_generate() {
        for name in ["505.mcf", "apache2_prefork_c128"] {
            let p = profiles::by_name(name).unwrap();
            let materialized = TraceGenerator::new(p, 31).generate(4_000);
            let mut src = TraceGenerator::new(p, 31).into_source(4_000);
            assert_eq!(src.name(), name);
            assert_eq!(src.branch_hint(), Some(4_000));
            let streamed = src.collect_trace().unwrap();
            assert_eq!(streamed.events(), materialized.events(), "{name}");
            assert_eq!(src.next_event().unwrap(), None, "exhausted stays exhausted");
        }
    }

    #[test]
    fn batched_pulls_bit_identical_to_generate() {
        let p = profiles::by_name("apache2_prefork_c128").unwrap();
        let materialized = TraceGenerator::new(p, 13).generate(3_000);
        let mut src = TraceGenerator::new(p, 13).into_source(3_000);
        let mut buf = Vec::new();
        let mut got = Vec::new();
        loop {
            // A batch size larger than one generator slice, not dividing it.
            let n = src.next_batch(&mut buf, 301).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf);
        }
        assert_eq!(got.as_slice(), materialized.events());
        assert_eq!(src.next_batch(&mut buf, 301).unwrap(), 0);
    }

    #[test]
    fn source_declares_generator_threads() {
        let p = profiles::by_name("apache2_prefork_c128").unwrap();
        let src = TraceGenerator::new(p, 1).into_source(100);
        assert_eq!(src.thread_count(), 2);
    }

    #[test]
    fn different_workloads_have_different_kernel_share() {
        let spec =
            TraceGenerator::new(profiles::by_name("503.bwaves").unwrap(), 1).generate(30_000);
        let srv =
            TraceGenerator::new(profiles::by_name("mysql_256con_50s").unwrap(), 1).generate(30_000);
        assert!(srv.kernel_entries() > 4 * spec.kernel_entries().max(1));
        assert!(srv.context_switches() > spec.context_switches());
    }
}

//! Trace events — the unit of exchange between workload generation and the
//! trace-driven simulator.

use stbpu_bpu::{BranchRecord, EntityId};

/// One event of a captured (here: synthesized) execution trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A retired branch on logical thread `tid`.
    Branch {
        /// Logical (SMT) thread.
        tid: u8,
        /// The branch record (pc, kind, outcome, target, gap).
        rec: BranchRecord,
    },
    /// The scheduler switched thread `tid` to a different process.
    ContextSwitch {
        /// Logical thread.
        tid: u8,
        /// The process now running.
        entity: EntityId,
    },
    /// Privilege mode changed (syscall entry/exit, interrupt delivery).
    ModeSwitch {
        /// Logical thread.
        tid: u8,
        /// `true` on kernel entry, `false` on return to user.
        kernel: bool,
    },
    /// An asynchronous interrupt was delivered (brief kernel excursion
    /// follows as ModeSwitch events).
    Interrupt {
        /// Logical thread.
        tid: u8,
    },
}

impl TraceEvent {
    /// The logical (SMT) thread the event occurred on.
    pub fn tid(&self) -> u8 {
        match *self {
            TraceEvent::Branch { tid, .. }
            | TraceEvent::ContextSwitch { tid, .. }
            | TraceEvent::ModeSwitch { tid, .. }
            | TraceEvent::Interrupt { tid } => tid,
        }
    }
}

/// A named sequence of trace events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Workload name (matches the figure x-axis labels).
    pub name: String,
    /// The event stream.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty named trace.
    pub fn new(name: &str) -> Self {
        Trace {
            name: name.to_string(),
            events: Vec::new(),
        }
    }

    /// Number of hardware threads the trace occupies (highest `tid` + 1;
    /// 0 for an empty trace). Simulators size per-thread state from this.
    pub fn thread_count(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.tid() as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of branch events.
    pub fn branch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Branch { .. }))
            .count()
    }

    /// Number of context switches.
    pub fn context_switches(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ContextSwitch { .. }))
            .count()
    }

    /// Number of kernel entries (mode switches with `kernel == true`).
    pub fn kernel_entries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ModeSwitch { kernel: true, .. }))
            .count()
    }

    /// Total instruction count implied by branches plus their gaps — used
    /// by the pipeline model for IPC.
    pub fn instruction_count(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Branch { rec, .. } => 1 + rec.gap as u64,
                _ => 0,
            })
            .sum()
    }

    /// Iterates over branch records only.
    pub fn branches(&self) -> impl Iterator<Item = (u8, &BranchRecord)> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Branch { tid, rec } => Some((*tid, rec)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::BranchKind;

    #[test]
    fn counting_helpers() {
        let mut t = Trace::new("t");
        t.events.push(TraceEvent::ContextSwitch {
            tid: 0,
            entity: EntityId::user(1),
        });
        t.events.push(TraceEvent::Branch {
            tid: 0,
            rec: BranchRecord::taken(0x40, BranchKind::DirectJump, 0x80).with_gap(9),
        });
        t.events.push(TraceEvent::ModeSwitch {
            tid: 0,
            kernel: true,
        });
        t.events.push(TraceEvent::Branch {
            tid: 0,
            rec: BranchRecord::not_taken(0xffff_8000_0000),
        });
        t.events.push(TraceEvent::ModeSwitch {
            tid: 0,
            kernel: false,
        });
        t.events.push(TraceEvent::Interrupt { tid: 0 });
        assert_eq!(t.branch_count(), 2);
        assert_eq!(t.context_switches(), 1);
        assert_eq!(t.kernel_entries(), 1);
        assert_eq!(t.instruction_count(), 1 + 9 + 1);
        assert_eq!(t.branches().count(), 2);
    }
}

//! Trace events — the unit of exchange between workload generation and the
//! trace-driven simulator.

use stbpu_bpu::{BranchRecord, EntityId};

/// One event of a captured (here: synthesized) execution trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A retired branch on logical thread `tid`.
    Branch {
        /// Logical (SMT) thread.
        tid: u8,
        /// The branch record (pc, kind, outcome, target, gap).
        rec: BranchRecord,
    },
    /// The scheduler switched thread `tid` to a different process.
    ContextSwitch {
        /// Logical thread.
        tid: u8,
        /// The process now running.
        entity: EntityId,
    },
    /// Privilege mode changed (syscall entry/exit, interrupt delivery).
    ModeSwitch {
        /// Logical thread.
        tid: u8,
        /// `true` on kernel entry, `false` on return to user.
        kernel: bool,
    },
    /// An asynchronous interrupt was delivered (brief kernel excursion
    /// follows as ModeSwitch events).
    Interrupt {
        /// Logical thread.
        tid: u8,
    },
}

impl TraceEvent {
    /// The logical (SMT) thread the event occurred on.
    pub fn tid(&self) -> u8 {
        match *self {
            TraceEvent::Branch { tid, .. }
            | TraceEvent::ContextSwitch { tid, .. }
            | TraceEvent::ModeSwitch { tid, .. }
            | TraceEvent::Interrupt { tid } => tid,
        }
    }
}

/// A named, fully materialized sequence of trace events.
///
/// The event vector is private: events enter through [`Trace::push`] (or
/// [`Trace::from_events`]), which maintains the summary counters
/// incrementally, so [`Trace::thread_count`], [`Trace::branch_count`] and
/// the other metadata accessors are O(1) instead of re-scanning the whole
/// vector on every call.
///
/// For streaming consumption (no materialized vector at all), see the
/// [`crate::EventSource`] trait; [`Trace::source`] adapts a materialized
/// trace to that interface.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Workload name (matches the figure x-axis labels).
    pub name: String,
    events: Vec<TraceEvent>,
    threads: usize,
    branches: usize,
    context_switches: usize,
    kernel_entries: usize,
    instructions: u64,
}

impl Trace {
    /// Creates an empty named trace.
    pub fn new(name: &str) -> Self {
        Trace {
            name: name.to_string(),
            ..Trace::default()
        }
    }

    /// Builds a trace from an already-collected event vector (counters are
    /// derived once).
    pub fn from_events<I: IntoIterator<Item = TraceEvent>>(name: &str, events: I) -> Self {
        let mut t = Trace::new(name);
        for ev in events {
            t.push(ev);
        }
        t
    }

    /// Appends one event, updating the summary counters.
    pub fn push(&mut self, ev: TraceEvent) {
        self.threads = self.threads.max(ev.tid() as usize + 1);
        match ev {
            TraceEvent::Branch { rec, .. } => {
                self.branches += 1;
                self.instructions += 1 + rec.gap as u64;
            }
            TraceEvent::ContextSwitch { .. } => self.context_switches += 1,
            TraceEvent::ModeSwitch { kernel: true, .. } => self.kernel_entries += 1,
            _ => {}
        }
        self.events.push(ev);
    }

    /// The event stream.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events of any kind.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of hardware threads the trace occupies (highest `tid` + 1;
    /// 0 for an empty trace). Simulators size per-thread state from this.
    /// O(1): maintained incrementally by [`Trace::push`].
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Number of branch events. O(1).
    pub fn branch_count(&self) -> usize {
        self.branches
    }

    /// Number of context switches. O(1).
    pub fn context_switches(&self) -> usize {
        self.context_switches
    }

    /// Number of kernel entries (mode switches with `kernel == true`). O(1).
    pub fn kernel_entries(&self) -> usize {
        self.kernel_entries
    }

    /// Total instruction count implied by branches plus their gaps — used
    /// by the pipeline model for IPC. O(1).
    pub fn instruction_count(&self) -> u64 {
        self.instructions
    }

    /// Iterates over branch records only.
    pub fn branches(&self) -> impl Iterator<Item = (u8, &BranchRecord)> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Branch { tid, rec } => Some((*tid, rec)),
            _ => None,
        })
    }

    /// A streaming [`crate::EventSource`] view over this trace.
    pub fn source(&self) -> crate::TraceSource<'_> {
        crate::TraceSource::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::BranchKind;

    fn sample() -> Trace {
        let mut t = Trace::new("t");
        t.push(TraceEvent::ContextSwitch {
            tid: 0,
            entity: EntityId::user(1),
        });
        t.push(TraceEvent::Branch {
            tid: 0,
            rec: BranchRecord::taken(0x40, BranchKind::DirectJump, 0x80).with_gap(9),
        });
        t.push(TraceEvent::ModeSwitch {
            tid: 0,
            kernel: true,
        });
        t.push(TraceEvent::Branch {
            tid: 0,
            rec: BranchRecord::not_taken(0xffff_8000_0000),
        });
        t.push(TraceEvent::ModeSwitch {
            tid: 0,
            kernel: false,
        });
        t.push(TraceEvent::Interrupt { tid: 0 });
        t
    }

    #[test]
    fn counting_helpers() {
        let t = sample();
        assert_eq!(t.branch_count(), 2);
        assert_eq!(t.context_switches(), 1);
        assert_eq!(t.kernel_entries(), 1);
        assert_eq!(t.instruction_count(), 1 + 9 + 1);
        assert_eq!(t.branches().count(), 2);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn thread_count_tracks_pushes_incrementally() {
        let mut t = Trace::new("threads");
        assert_eq!(t.thread_count(), 0);
        t.push(TraceEvent::Interrupt { tid: 0 });
        assert_eq!(t.thread_count(), 1);
        t.push(TraceEvent::Interrupt { tid: 1 });
        assert_eq!(t.thread_count(), 2);
        // Lower tids never shrink the count.
        t.push(TraceEvent::Interrupt { tid: 0 });
        assert_eq!(t.thread_count(), 2);
    }

    #[test]
    fn from_events_matches_pushes() {
        let a = sample();
        let b = Trace::from_events("t", a.events().to_vec());
        assert_eq!(a.events(), b.events());
        assert_eq!(a.branch_count(), b.branch_count());
        assert_eq!(a.thread_count(), b.thread_count());
        assert_eq!(a.instruction_count(), b.instruction_count());
    }
}

//! Property tests for the binary `.stbt` format: lossless round trips
//! against the line format over arbitrary event streams, streaming/batch
//! equivalence, and header/record corruption reporting rich positioned
//! errors (the binary counterpart of the line reader's line numbers).

use proptest::prelude::*;
use stbpu_bpu::{BranchKind, BranchRecord, EntityId, VirtAddr};
use stbpu_trace::binfmt::{read_bin_trace, write_bin_trace, BinTraceReader, MAGIC, VERSION};
use stbpu_trace::serialize::{read_trace, write_trace};
use stbpu_trace::{EventSource, Trace, TraceEvent};

/// Arbitrary events across all four variants, all six branch kinds, the
/// full tid/pc/target/ilen/gap/entity ranges.
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u8>(),  // variant + kind selector
        any::<u8>(),  // tid
        any::<u64>(), // pc
        any::<u64>(), // target
        any::<bool>(),
        any::<u8>(),  // ilen
        any::<u16>(), // gap
        any::<u32>(), // entity
    )
        .prop_map(
            |(sel, tid, pc, target, taken, ilen, gap, entity)| match sel % 8 {
                0 => TraceEvent::ContextSwitch {
                    tid,
                    entity: EntityId(entity),
                },
                1 => TraceEvent::ModeSwitch { tid, kernel: taken },
                2 => TraceEvent::Interrupt { tid },
                _ => TraceEvent::Branch {
                    tid,
                    rec: BranchRecord {
                        pc: VirtAddr::new(pc),
                        kind: BranchKind::ALL[(sel >> 3) as usize % 6],
                        taken,
                        target: VirtAddr::new(target),
                        ilen,
                        gap,
                    },
                },
            },
        )
}

fn arb_stream() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(arb_event(), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `line -> binary -> line` is the identity on events AND on the
    /// serialized line bytes (headers normalized the same way), for any
    /// event stream.
    #[test]
    fn line_binary_line_roundtrip(events in arb_stream()) {
        let t = Trace::from_events("prop", events);
        let mut line1 = Vec::new();
        write_trace(&t, &mut line1).unwrap();

        // line -> (parse) -> binary -> (parse) -> line
        let parsed = read_trace(line1.as_slice()).unwrap();
        let mut bin = Vec::new();
        write_bin_trace(&parsed, &mut bin).unwrap();
        let back = read_bin_trace(bin.as_slice()).unwrap();
        prop_assert_eq!(back.events(), t.events());
        prop_assert_eq!(back.name.as_str(), "prop");

        let mut line2 = Vec::new();
        write_trace(&back, &mut line2).unwrap();
        prop_assert_eq!(line1, line2, "line bytes drifted across the binary hop");
    }

    /// `binary -> line -> binary` is the identity on the binary bytes.
    #[test]
    fn binary_line_binary_roundtrip(events in arb_stream()) {
        let t = Trace::from_events("prop", events);
        let mut bin1 = Vec::new();
        write_bin_trace(&t, &mut bin1).unwrap();

        let hop = read_bin_trace(bin1.as_slice()).unwrap();
        let mut line = Vec::new();
        write_trace(&hop, &mut line).unwrap();
        let hop2 = read_trace(line.as_slice()).unwrap();

        let mut bin2 = Vec::new();
        write_bin_trace(&hop2, &mut bin2).unwrap();
        prop_assert_eq!(bin1, bin2, "binary bytes drifted across the line hop");
    }

    /// Batched pulls of any size concatenate to exactly the event stream.
    #[test]
    fn batch_sizes_are_equivalent(events in arb_stream(), chunk in any::<u16>()) {
        let chunk = (chunk as usize % 97) + 1;
        let t = Trace::from_events("prop", events);
        let mut bin = Vec::new();
        write_bin_trace(&t, &mut bin).unwrap();
        let mut src = BinTraceReader::new(bin.as_slice()).unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = src.next_batch(&mut buf, chunk).unwrap();
            if n == 0 {
                break;
            }
            prop_assert!(n <= chunk);
            got.extend_from_slice(&buf);
        }
        prop_assert_eq!(got.as_slice(), t.events());
    }

    /// Truncating a binary trace anywhere inside the record section never
    /// panics, never fabricates extra events, and reports a positioned
    /// "truncated record" error unless the cut lands exactly on a record
    /// boundary.
    #[test]
    fn arbitrary_truncation_is_detected(events in arb_stream(), cut in any::<u64>()) {
        prop_assume!(!events.is_empty());
        let total = events.len();
        let t = Trace::from_events("prop", events);
        let mut bin = Vec::new();
        write_bin_trace(&t, &mut bin).unwrap();
        let header_len = 20 + "prop".len();
        prop_assume!(bin.len() > header_len);
        let cut = header_len + (cut as usize % (bin.len() - header_len));

        let mut src = BinTraceReader::new(&bin[..cut]).unwrap();
        let mut seen = 0usize;
        let outcome = loop {
            match src.next_record() {
                Ok(Some(_)) => seen += 1,
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        prop_assert!(seen < total, "truncated stream yielded all {total} events");
        match outcome {
            Ok(()) => {}
            Err(e) => {
                prop_assert!(
                    e.to_string().contains("truncated record"),
                    "unexpected error: {}", e
                );
                prop_assert!(e.record() == seen as u64 + 1);
                prop_assert!(e.offset() >= header_len as u64);
            }
        }
    }
}

// --- deterministic header-corruption cases (the rich errors the line
// --- TraceReader grew in PR 3, mirrored byte-positioned) --------------

fn golden_bytes() -> Vec<u8> {
    let t = Trace::from_events(
        "hdr",
        [
            TraceEvent::Interrupt { tid: 0 },
            TraceEvent::ModeSwitch {
                tid: 1,
                kernel: true,
            },
        ],
    );
    let mut bin = Vec::new();
    write_bin_trace(&t, &mut bin).unwrap();
    bin
}

#[test]
fn bad_magic_reports_what_was_found() {
    let mut bin = golden_bytes();
    bin[0..4].copy_from_slice(b"NOPE");
    let e = BinTraceReader::new(bin.as_slice()).map(|_| ()).unwrap_err();
    assert_eq!(e.offset(), 0);
    assert_eq!(e.record(), 0);
    assert!(e.to_string().contains("bad magic"), "{e}");
    assert!(e.to_string().contains("STBT"), "{e}");
}

#[test]
fn version_mismatch_names_both_versions() {
    let mut bin = golden_bytes();
    bin[4..6].copy_from_slice(&(VERSION + 41).to_le_bytes());
    let e = BinTraceReader::new(bin.as_slice()).map(|_| ()).unwrap_err();
    assert_eq!(e.offset(), 4);
    assert!(e.to_string().contains("version 42"), "{e}");
    assert!(e.to_string().contains(&format!("version {VERSION}")), "{e}");
}

#[test]
fn truncated_header_is_positioned() {
    let bin = golden_bytes();
    for cut in [0, 3, 10, 19] {
        let e = BinTraceReader::new(&bin[..cut]).map(|_| ()).unwrap_err();
        assert_eq!(e.record(), 0, "cut at {cut}");
        let msg = e.to_string();
        assert!(
            msg.contains("magic") || msg.contains("truncated header"),
            "cut at {cut}: {msg}"
        );
    }
}

#[test]
fn magic_survives_both_hops_unchanged() {
    // The detection seam everything rides on: the first four bytes.
    assert_eq!(&golden_bytes()[..4], &MAGIC);
}

//! Property tests for the CBP-style trace frontend: semantic round trips
//! through `.stbt`, byte-identical re-emission, and total decoding under
//! arbitrary truncation and corruption.

use proptest::prelude::*;
use stbpu_trace::binfmt::{read_bin_trace, write_bin_trace};
use stbpu_trace::cbp::{read_cbp_trace, write_cbp_trace, CbpReader};
use stbpu_trace::{EventSource, TraceEvent};

const HEADER_LEN: usize = 16;
const RECORD_LEN: usize = 18;
const VA_MASK: u64 = (1u64 << 48) - 1;

/// One syntactically valid record: 48-bit addresses, type 0..=5, taken
/// forced to 1 for unconditional types.
fn arb_record() -> impl Strategy<Value = (u64, u8, u8, u64)> {
    (any::<u64>(), 0u8..=5, any::<bool>(), any::<u64>()).prop_map(|(pc, ty, taken, target)| {
        let taken = if ty == 0 { u8::from(taken) } else { 1 };
        (pc & VA_MASK, ty, taken, target & VA_MASK)
    })
}

fn arb_stream() -> impl Strategy<Value = Vec<(u64, u8, u8, u64)>> {
    proptest::collection::vec(arb_record(), 0..80)
}

/// Serializes records as a valid `.cbp` byte stream (count flag set).
fn encode(records: &[(u64, u8, u8, u64)]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + records.len() * RECORD_LEN);
    bytes.extend_from_slice(b"CBPT");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for &(pc, ty, taken, target) in records {
        bytes.extend_from_slice(&pc.to_le_bytes());
        bytes.push(ty);
        bytes.push(taken);
        bytes.extend_from_slice(&target.to_le_bytes());
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// cbp → `.stbt` → cbp reproduces any valid `.cbp` stream
    /// byte-for-byte, and the decoded fields match the encoded ones.
    #[test]
    fn cbp_stbt_cbp_round_trip_is_byte_identical(records in arb_stream()) {
        let bytes = encode(&records);
        let decoded = read_cbp_trace(bytes.as_slice()).unwrap();
        prop_assert_eq!(decoded.branch_count(), records.len());
        for ((_, rec), &(pc, ty, taken, target)) in decoded.branches().zip(records.iter()) {
            prop_assert_eq!(rec.pc.raw(), pc);
            prop_assert_eq!(u8::from(rec.taken), taken);
            prop_assert_eq!(rec.target.raw(), target);
            let _ = ty;
        }

        let mut stbt = Vec::new();
        write_bin_trace(&decoded, &mut stbt).unwrap();
        let back = read_bin_trace(stbt.as_slice()).unwrap();
        prop_assert_eq!(back.events(), decoded.events());

        let mut again = Vec::new();
        write_cbp_trace(&back, &mut again).unwrap();
        prop_assert_eq!(again, bytes);
    }

    /// Cutting a valid stream at an arbitrary byte either decodes a
    /// prefix (cut on a record boundary) or yields a positioned error
    /// naming the cut — never a panic, never garbage records.
    #[test]
    fn arbitrary_truncation_yields_positioned_error(
        records in arb_stream(),
        frac in 0.0f64..1.0,
    ) {
        let bytes = encode(&records);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let prefix = &bytes[..cut];
        if cut < HEADER_LEN {
            let e = CbpReader::new(prefix).map(|_| ()).unwrap_err();
            prop_assert_eq!(e.record(), 0);
            prop_assert!(e.offset() <= cut as u64);
        } else {
            let body = cut - HEADER_LEN;
            let whole = body / RECORD_LEN;
            let mut src = CbpReader::new(prefix).unwrap();
            for _ in 0..whole {
                prop_assert!(src.next_record().unwrap().is_some());
            }
            if body.is_multiple_of(RECORD_LEN) {
                prop_assert!(src.next_record().unwrap().is_none());
            } else {
                let e = src.next_record().map(|_| ()).unwrap_err();
                prop_assert_eq!(e.offset(), (HEADER_LEN + whole * RECORD_LEN) as u64);
                prop_assert_eq!(e.record(), whole as u64 + 1);
                prop_assert!(e.message().contains("truncated record"), "{}", e);
            }
        }
    }

    /// Flipping one byte anywhere in a valid stream decodes totally:
    /// either the stream still parses or the error points inside it.
    #[test]
    fn single_byte_corruption_decodes_totally(
        records in arb_stream(),
        frac in 0.0f64..1.0,
        patch in any::<u8>(),
    ) {
        let mut bytes = encode(&records);
        let pos = ((bytes.len() as f64) * frac) as usize % bytes.len().max(1);
        if let Some(b) = bytes.get_mut(pos) {
            *b ^= patch | 1; // guarantee the byte actually changes
        }
        match read_cbp_trace(bytes.as_slice()) {
            Ok(t) => prop_assert!(t.branch_count() <= records.len()),
            Err(e) => prop_assert!(e.offset() <= bytes.len() as u64, "{}", e),
        }
    }

    /// Completely arbitrary bytes never panic the reader — decoding is
    /// total, including the batched path.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        match CbpReader::new(bytes.as_slice()) {
            Ok(mut src) => {
                let mut buf = Vec::new();
                loop {
                    match src.next_batch(&mut buf, 64) {
                        Ok(0) => break,
                        Ok(_) => {
                            for ev in &buf {
                                prop_assert!(matches!(ev, TraceEvent::Branch { tid: 0, .. }));
                            }
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(e) => prop_assert_eq!(e.record(), 0),
        }
    }
}

//! Property tests for trace generation: structural invariants over random
//! profile parameters and seeds.

use proptest::prelude::*;
use stbpu_trace::{TraceEvent, TraceGenerator, WorkloadClass, WorkloadProfile};

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        4usize..60,             // functions
        3usize..10,             // blocks per fn
        0.0f64..0.4,            // loop fraction
        2u32..40,               // avg trip
        0.0f64..0.3,            // pattern complexity
        0.0f64..0.15,           // noise
        (1usize..6, 1usize..3), // processes, threads
        0.0f64..20.0,           // syscalls per 1k
        0.0f64..8.0,            // ctx switches per 1k
    )
        .prop_map(
            |(functions, blocks, loops, trip, pat, noise, (procs, threads), sys, ctx)| {
                WorkloadProfile {
                    name: "prop",
                    class: WorkloadClass::SpecInt,
                    functions,
                    blocks_per_fn: blocks,
                    loop_fraction: loops,
                    avg_trip: trip,
                    pattern_complexity: pat,
                    noise,
                    taken_bias: 0.75,
                    indirect_fraction: 0.08,
                    indirect_targets: 3,
                    call_fraction: 0.2,
                    call_depth: 10,
                    syscalls_per_1k: sys,
                    ctx_switches_per_1k: ctx,
                    interrupts_per_1k: 0.4,
                    processes: procs,
                    threads,
                    gap_mean: 6.0,
                    load_fraction: 0.3,
                    l1_miss: 0.04,
                    l2_miss: 0.3,
                    llc_miss: 0.3,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated trace has the exact requested branch count, balanced
    /// mode switches, and per-thread well-nested call/return pairing.
    #[test]
    fn trace_structural_invariants(p in arb_profile(), seed in any::<u64>()) {
        let trace = TraceGenerator::new(&p, seed).generate(3_000);
        prop_assert_eq!(trace.branch_count(), 3_000);

        let mut depth = [0i32; 2];
        let mut shadows: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for ev in trace.events() {
            match ev {
                TraceEvent::ModeSwitch { tid, kernel } => {
                    depth[*tid as usize] += if *kernel { 1 } else { -1 };
                    prop_assert!((0..=1).contains(&depth[*tid as usize]));
                }
                TraceEvent::Branch { tid, rec } => {
                    let sh = &mut shadows[*tid as usize];
                    if rec.kind.is_call() {
                        sh.push(rec.fallthrough().raw());
                    } else if rec.kind.is_return() {
                        // Kernel/user walkers interleave on one thread, so
                        // the shadow stack may be popped across domains —
                        // but a return must never appear with an empty
                        // *global* call history for that thread.
                        prop_assert!(sh.pop().is_some(), "return without any call");
                    }
                }
                _ => {}
            }
        }
    }

    /// Determinism in (profile, seed) and divergence across seeds.
    #[test]
    fn generation_deterministic(p in arb_profile(), seed in any::<u64>()) {
        let a = TraceGenerator::new(&p, seed).generate(800);
        let b = TraceGenerator::new(&p, seed).generate(800);
        prop_assert_eq!(a.events(), b.events());
    }

    /// Instruction counts are consistent with branch counts and gaps.
    #[test]
    fn instruction_count_consistent(p in arb_profile(), seed in any::<u64>()) {
        let t = TraceGenerator::new(&p, seed).generate(1_000);
        let manual: u64 = t.branches().map(|(_, r)| 1 + r.gap as u64).sum();
        prop_assert_eq!(t.instruction_count(), manual);
        prop_assert!(t.instruction_count() >= 1_000);
    }
}

//! Property tests for the predictor models: no panics, sane statistics and
//! structural invariants for arbitrary branch streams.

use proptest::prelude::*;
use stbpu_bpu::{Bpu, BranchKind, BranchRecord};
use stbpu_predictors::{
    conservative, perceptron_baseline, skl_baseline, tage64_baseline, tage8_baseline,
};

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        0u64..(1u64 << 48),
        0usize..6,
        any::<bool>(),
        0u64..(1u64 << 48),
        0u16..64,
    )
        .prop_map(|(pc, k, taken, target, gap)| {
            let kind = BranchKind::ALL[k];
            let taken = taken || !kind.is_conditional();
            BranchRecord {
                pc: pc.into(),
                kind,
                taken,
                target: target.into(),
                ilen: 4,
                gap,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All five models accept arbitrary branch streams on both threads
    /// without panicking, and their statistics stay consistent.
    #[test]
    fn models_absorb_arbitrary_streams(recs in proptest::collection::vec(arb_record(), 1..200)) {
        let mut models: Vec<Box<dyn Bpu>> = vec![
            Box::new(skl_baseline()),
            Box::new(tage8_baseline()),
            Box::new(tage64_baseline()),
            Box::new(perceptron_baseline()),
            Box::new(conservative()),
        ];
        for m in &mut models {
            for (i, r) in recs.iter().enumerate() {
                let out = m.process(i % 2, r);
                // The OAE relation must hold per branch.
                let dir_ok = out.direction_correct.unwrap_or(true);
                let tgt_ok = out.target_correct.unwrap_or(true);
                prop_assert_eq!(out.effective_correct, dir_ok && tgt_ok);
                prop_assert_eq!(out.mispredicted, !out.effective_correct);
            }
            let s = m.stats();
            prop_assert_eq!(s.branches, recs.len() as u64);
            prop_assert!(s.effective_correct <= s.branches);
            prop_assert!(s.cond_correct <= s.cond);
            prop_assert!(s.target_correct <= s.target_needed);
            prop_assert!((0.0..=1.0).contains(&s.oae()));
        }
    }

    /// Determinism: the same stream through two instances of the same
    /// model gives identical outcomes.
    #[test]
    fn models_are_deterministic(recs in proptest::collection::vec(arb_record(), 1..100)) {
        let mut a = tage8_baseline();
        let mut b = tage8_baseline();
        for r in &recs {
            prop_assert_eq!(a.process(0, r), b.process(0, r));
        }
    }

    /// Flushing returns the model to a state where previously learned
    /// direct branches miss again.
    #[test]
    fn flush_forgets_targets(pc in 0u64..(1 << 40), tgt in 0u64..(1 << 40)) {
        let mut m = skl_baseline();
        let rec = BranchRecord::taken(pc, BranchKind::DirectJump, tgt);
        m.process(0, &rec);
        m.flush();
        let out = m.process(0, &rec);
        prop_assert!(out.btb_miss);
    }
}

//! The perceptron branch predictor (Jiménez & Lin, HPCA 2001).
//!
//! Each branch hashes (through the mapper's function p / Rp) to a row of
//! signed weights; the prediction is the sign of the dot product between
//! the weights and the global history (±1 encoded). Training occurs on a
//! misprediction or when the magnitude of the sum is below the threshold
//! θ = ⌊1.93·h + 14⌋.

use crate::direction::{DirPrediction, DirectionPredictor, Provider};
use stbpu_bpu::{check_len, HistoryCtx, Mapper, SnapError, StateReader, StateWriter};

/// Perceptron predictor geometry.
#[derive(Clone, Copy, Debug)]
pub struct PerceptronConfig {
    /// log2 number of perceptron rows (Table II: 10-bit index).
    pub idx_bits: u32,
    /// Global history length (weights per row, excluding bias).
    pub history: usize,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig {
            idx_bits: 10,
            history: 31,
        }
    }
}

impl PerceptronConfig {
    /// The training threshold θ = ⌊1.93·h + 14⌋ from the original paper.
    pub fn theta(&self) -> i32 {
        (1.93 * self.history as f64 + 14.0).floor() as i32
    }
}

/// The perceptron direction predictor.
///
/// ```
/// use stbpu_bpu::{BaselineMapper, HistoryCtx};
/// use stbpu_predictors::{DirectionPredictor, PerceptronConfig, PerceptronPredictor};
///
/// let mut p = PerceptronPredictor::new(PerceptronConfig::default());
/// let m = BaselineMapper::new();
/// let h = HistoryCtx::new();
/// let d = p.predict(&m, 0, 0x1000, &h);
/// p.update(&m, 0, 0x1000, &h, true, d);
/// ```
#[derive(Clone, Debug)]
pub struct PerceptronPredictor {
    cfg: PerceptronConfig,
    /// `rows × (history + 1)` weights; index 0 is the bias weight.
    weights: Vec<Vec<i8>>,
    theta: i32,
}

impl PerceptronPredictor {
    /// Creates a perceptron predictor.
    pub fn new(cfg: PerceptronConfig) -> Self {
        PerceptronPredictor {
            weights: vec![vec![0i8; cfg.history + 1]; 1 << cfg.idx_bits],
            theta: cfg.theta(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> PerceptronConfig {
        self.cfg
    }

    fn sum(&self, row: usize, ghr: u64) -> i32 {
        let w = &self.weights[row];
        let mut s = w[0] as i32;
        for i in 0..self.cfg.history {
            let x = if (ghr >> i) & 1 == 1 { 1 } else { -1 };
            s += w[i + 1] as i32 * x;
        }
        s
    }
}

impl DirectionPredictor for PerceptronPredictor {
    fn name(&self) -> &'static str {
        "PerceptronBP"
    }

    fn predict(&mut self, m: &dyn Mapper, tid: usize, pc: u64, h: &HistoryCtx) -> DirPrediction {
        let row = m.perceptron(tid, pc, self.cfg.idx_bits) & ((1 << self.cfg.idx_bits) - 1);
        DirPrediction {
            taken: self.sum(row, h.ghr()) >= 0,
            provider: Provider::Perceptron,
        }
    }

    fn update(
        &mut self,
        m: &dyn Mapper,
        tid: usize,
        pc: u64,
        h: &HistoryCtx,
        taken: bool,
        _pred: DirPrediction,
    ) {
        let row = m.perceptron(tid, pc, self.cfg.idx_bits) & ((1 << self.cfg.idx_bits) - 1);
        let ghr = h.ghr();
        let s = self.sum(row, ghr);
        let predicted = s >= 0;
        if predicted != taken || s.abs() <= self.theta {
            let t = if taken { 1i16 } else { -1 };
            let w = &mut self.weights[row];
            w[0] = (w[0] as i16 + t).clamp(-127, 127) as i8;
            for i in 0..self.cfg.history {
                let x = if (ghr >> i) & 1 == 1 { 1i16 } else { -1 };
                w[i + 1] = (w[i + 1] as i16 + t * x).clamp(-127, 127) as i8;
            }
        }
    }

    fn flush(&mut self) {
        for row in &mut self.weights {
            row.iter_mut().for_each(|w| *w = 0);
        }
    }

    fn save_state(&self, w: &mut StateWriter) -> Result<(), SnapError> {
        w.usize(self.weights.len());
        w.usize(self.cfg.history + 1);
        for row in &self.weights {
            for v in row {
                w.i64(i64::from(*v));
            }
        }
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let rows = r.usize()?;
        check_len(r, "perceptron rows", rows, self.weights.len())?;
        let cols = r.usize()?;
        check_len(r, "perceptron row width", cols, self.cfg.history + 1)?;
        for row in &mut self.weights {
            for v in row.iter_mut() {
                let raw = r.i64()?;
                *v = i8::try_from(raw)
                    .map_err(|_| r.err(format!("perceptron weight {raw} out of i8 range")))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::BaselineMapper;

    fn accuracy(pattern: &[bool], reps: usize, pc: u64) -> f64 {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let m = BaselineMapper::new();
        let mut h = HistoryCtx::new();
        let total = pattern.len() * reps;
        let mut seen = 0;
        let mut correct = 0;
        for (i, &taken) in pattern.iter().cycle().take(total).enumerate() {
            let d = p.predict(&m, 0, pc, &h);
            if i >= total / 2 {
                seen += 1;
                if d.taken == taken {
                    correct += 1;
                }
            }
            p.update(&m, 0, pc, &h, taken, d);
            h.push_outcome(taken);
        }
        correct as f64 / seen as f64
    }

    #[test]
    fn theta_matches_formula() {
        assert_eq!(
            PerceptronConfig {
                idx_bits: 10,
                history: 31
            }
            .theta(),
            73
        );
        assert_eq!(
            PerceptronConfig {
                idx_bits: 10,
                history: 59
            }
            .theta(),
            127
        );
    }

    #[test]
    fn biased_branch_learned() {
        assert!(accuracy(&[true], 64, 0x1000) > 0.99);
    }

    #[test]
    fn linearly_separable_pattern_learned() {
        // "Taken iff last outcome was taken" is linearly separable.
        assert!(accuracy(&[true, true, false, false], 200, 0x2000) > 0.9);
    }

    #[test]
    fn weights_saturate_without_overflow() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let m = BaselineMapper::new();
        let h = HistoryCtx::new();
        for _ in 0..100_000 {
            let d = p.predict(&m, 0, 0x3000, &h);
            p.update(&m, 0, 0x3000, &h, true, d);
        }
        assert!(p.predict(&m, 0, 0x3000, &h).taken);
    }

    #[test]
    fn flush_zeroes_weights() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let m = BaselineMapper::new();
        let h = HistoryCtx::new();
        for _ in 0..32 {
            let d = p.predict(&m, 0, 0x4000, &h);
            p.update(&m, 0, 0x4000, &h, true, d);
        }
        p.flush();
        // Zero weights => sum 0 => predicts taken (>= 0) from bias 0; train
        // one not-taken and it must flip.
        let d = p.predict(&m, 0, 0x4000, &h);
        p.update(&m, 0, 0x4000, &h, false, d);
        assert!(!p.predict(&m, 0, 0x4000, &h).taken);
    }
}

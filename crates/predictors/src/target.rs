//! The target-prediction machinery shared by every full model: BTB with
//! its two addressing modes, RSB discipline, and BHB-context handling.
//!
//! * Mode one (function ①/R1): the branch address provides index, tag and
//!   offset — used for direct jumps/calls, conditional branches and as the
//!   fall-back for indirect branches.
//! * Mode two (function ②/R2): the BHB provides the tag — used for
//!   indirect jumps/calls and as the fall-back for returns when the RSB
//!   underflows (Section II-A).
//!
//! Stored targets are opaque payloads: the baseline keeps the truncated
//! 32-bit target (re-extended by function ⑤), STBPU keeps that value
//! XOR-encrypted with φ (the mapper's `encrypt_target`/`decrypt_target`),
//! and the conservative model keeps the full 48-bit address.

use crate::ittage::{Ittage, IttageConfig};
use stbpu_bpu::{
    partition_set, BranchKind, BranchRecord, Btb, BtbConfig, HistoryCtx, Mapper, SnapError,
    StateReader, StateWriter, VirtAddr,
};

/// Result of a target lookup for one branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TargetPrediction {
    /// Predicted target, if any structure produced one.
    pub target: Option<VirtAddr>,
    /// The BTB lookup missed (front-end bubble for a taken branch).
    pub btb_miss: bool,
    /// A return found the RSB empty and fell back to the indirect
    /// predictor.
    pub rsb_underflow: bool,
}

/// BTB + RSB target predictor, parameterized by a [`Mapper`] at call time.
///
/// ```
/// use stbpu_bpu::{BaselineMapper, BranchKind, BranchRecord, BtbConfig, HistoryCtx};
/// use stbpu_predictors::TargetUnit;
///
/// let mut t = TargetUnit::new(BtbConfig::skylake(), false);
/// let m = BaselineMapper::new();
/// let mut h = HistoryCtx::new();
/// let rec = BranchRecord::taken(0x40_0000, BranchKind::DirectJump, 0x41_0000);
/// assert!(t.predict(&m, 0, &rec, &mut h).target.is_none()); // cold miss
/// t.update(&m, 0, &rec, &mut h, false);
/// assert_eq!(t.predict(&m, 0, &rec, &mut h).target, Some(rec.target));
/// ```
#[derive(Clone, Debug)]
pub struct TargetUnit {
    btb: Btb,
    /// Conservative model: store full 48-bit tags/targets, no encryption.
    full_fidelity: bool,
    partitioned: bool,
    /// Optional ITTAGE stage consulted before the BTB for indirect
    /// branches (the championship-class front end).
    ittage: Option<Ittage>,
}

impl TargetUnit {
    /// Creates the unit with the given BTB geometry. `full_fidelity`
    /// selects the conservative full-address storage model.
    pub fn new(cfg: BtbConfig, full_fidelity: bool) -> Self {
        TargetUnit {
            btb: Btb::new(cfg),
            full_fidelity,
            partitioned: false,
            ittage: None,
        }
    }

    /// Creates the unit with an ITTAGE indirect-target stage in front of
    /// the BTB.
    pub fn with_ittage(cfg: BtbConfig, full_fidelity: bool, ittage: IttageConfig) -> Self {
        let mut unit = TargetUnit::new(cfg, full_fidelity);
        unit.ittage = Some(Ittage::new(ittage));
        unit
    }

    /// Access to the ITTAGE stage, when configured.
    pub fn ittage(&self) -> Option<&Ittage> {
        self.ittage.as_ref()
    }

    /// Enables or disables STIBP-style set partitioning between threads.
    pub fn set_partitioned(&mut self, on: bool) {
        self.partitioned = on;
    }

    /// Whether partitioning is active.
    pub fn partitioned(&self) -> bool {
        self.partitioned
    }

    /// Access to the underlying BTB (attack harnesses observe occupancy).
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// Invalidates all BTB entries (and the ITTAGE stage, if present).
    pub fn flush(&mut self) {
        self.btb.flush();
        if let Some(it) = &mut self.ittage {
            it.flush();
        }
    }

    /// Serializes the BTB and the unit's mode flags for checkpointing.
    /// The ITTAGE stage, when configured, appends its state — models
    /// without one keep their historical byte layout.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.btb.save_state(w);
        w.bool(self.full_fidelity);
        w.bool(self.partitioned);
        if let Some(it) = &self.ittage {
            it.save_state(w);
        }
    }

    /// Restores state saved by [`TargetUnit::save_state`] into a unit of
    /// identical geometry and fidelity mode.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.btb.load_state(r)?;
        let ff = r.bool()?;
        if ff != self.full_fidelity {
            return Err(r.err("target-unit fidelity mode mismatch"));
        }
        self.partitioned = r.bool()?;
        if let Some(it) = &mut self.ittage {
            it.load_state(r)?;
        }
        Ok(())
    }

    fn set_for(&self, index: usize, tid: usize) -> usize {
        let sets = self.btb.config().sets;
        partition_set(index % sets, sets, tid, self.partitioned)
    }

    fn encode(&self, m: &dyn Mapper, tid: usize, target: VirtAddr) -> u64 {
        if self.full_fidelity {
            target.raw()
        } else {
            m.encrypt_target(tid, target.low32()) as u64
        }
    }

    fn decode(&self, m: &dyn Mapper, tid: usize, reference: VirtAddr, payload: u64) -> VirtAddr {
        if self.full_fidelity {
            VirtAddr::new(payload)
        } else {
            VirtAddr::extend(reference, m.decrypt_target(tid, payload as u32))
        }
    }

    /// Predicts the target of `rec` (consulting RSB for returns, BTB mode
    /// two then one for indirect branches, mode one otherwise).
    pub fn predict(
        &mut self,
        m: &dyn Mapper,
        tid: usize,
        rec: &BranchRecord,
        h: &mut HistoryCtx,
    ) -> TargetPrediction {
        let pc = rec.pc.raw();
        let coord = m.btb1(tid, pc);
        let set = self.set_for(coord.index, tid);

        match rec.kind {
            BranchKind::Return => match h.rsb.pop() {
                Some(payload) => TargetPrediction {
                    target: Some(self.decode(m, tid, rec.pc, payload)),
                    btb_miss: false,
                    rsb_underflow: false,
                },
                None => {
                    let mut p = self.indirect_lookup(m, tid, rec, set, coord.tag, coord.offset, h);
                    p.rsb_underflow = true;
                    p
                }
            },
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                self.indirect_lookup(m, tid, rec, set, coord.tag, coord.offset, h)
            }
            _ => match self.btb.lookup(set, coord.tag, coord.offset) {
                Some(payload) => TargetPrediction {
                    target: Some(self.decode(m, tid, rec.pc, payload)),
                    btb_miss: false,
                    rsb_underflow: false,
                },
                None => TargetPrediction {
                    target: None,
                    btb_miss: true,
                    rsb_underflow: false,
                },
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn indirect_lookup(
        &mut self,
        m: &dyn Mapper,
        tid: usize,
        rec: &BranchRecord,
        set: usize,
        tag1: u64,
        offset: u8,
        h: &HistoryCtx,
    ) -> TargetPrediction {
        // ITTAGE stage first: tagged path-history tables capture far more
        // context than the BHB-derived mode-two tag.
        if let Some(it) = &self.ittage {
            if let Some(payload) = it.predict(m, tid, rec.pc.raw()) {
                return TargetPrediction {
                    target: Some(self.decode(m, tid, rec.pc, payload)),
                    btb_miss: false,
                    rsb_underflow: false,
                };
            }
        }
        // Mode two: BHB-derived tag captures the branch context, allowing
        // several targets per static branch.
        let tag2 = m.btb2_tag(tid, h.bhb());
        if let Some(payload) = self.btb.lookup(set, tag2 | MODE2_BIT, offset) {
            return TargetPrediction {
                target: Some(self.decode(m, tid, rec.pc, payload)),
                btb_miss: false,
                rsb_underflow: false,
            };
        }
        // Fall back to mode one (last-target prediction).
        match self.btb.lookup(set, tag1, offset) {
            Some(payload) => TargetPrediction {
                target: Some(self.decode(m, tid, rec.pc, payload)),
                btb_miss: false,
                rsb_underflow: false,
            },
            None => TargetPrediction {
                target: None,
                btb_miss: true,
                rsb_underflow: false,
            },
        }
    }

    /// Updates structures with the resolved branch; returns the number of
    /// BTB evictions triggered (fed to the STBPU monitoring MSRs).
    /// `rsb_underflowed` must carry the flag from this branch's
    /// [`TargetUnit::predict`].
    pub fn update(
        &mut self,
        m: &dyn Mapper,
        tid: usize,
        rec: &BranchRecord,
        h: &mut HistoryCtx,
        rsb_underflowed: bool,
    ) -> u32 {
        let mut evictions = 0;
        let pc = rec.pc.raw();
        let coord = m.btb1(tid, pc);
        let set = self.set_for(coord.index, tid);

        if rec.taken {
            let payload = self.encode(m, tid, rec.target);
            match rec.kind {
                BranchKind::Return => {
                    // Returns live in the RSB; the indirect predictor only
                    // learns them when the RSB underflowed.
                    if rsb_underflowed {
                        if let Some(it) = &mut self.ittage {
                            it.update(m, tid, pc, payload);
                        }
                        let tag2 = m.btb2_tag(tid, h.bhb());
                        if self
                            .btb
                            .insert(set, tag2 | MODE2_BIT, coord.offset, payload)
                            .is_some()
                        {
                            evictions += 1;
                        }
                    }
                }
                BranchKind::IndirectJump | BranchKind::IndirectCall => {
                    if let Some(it) = &mut self.ittage {
                        it.update(m, tid, pc, payload);
                    }
                    let tag2 = m.btb2_tag(tid, h.bhb());
                    if self
                        .btb
                        .insert(set, tag2 | MODE2_BIT, coord.offset, payload)
                        .is_some()
                    {
                        evictions += 1;
                    }
                    if self
                        .btb
                        .insert(set, coord.tag, coord.offset, payload)
                        .is_some()
                    {
                        evictions += 1;
                    }
                }
                _ => {
                    if self
                        .btb
                        .insert(set, coord.tag, coord.offset, payload)
                        .is_some()
                    {
                        evictions += 1;
                    }
                }
            }
        }

        if rec.kind.is_call() {
            let ret = self.encode(m, tid, rec.fallthrough());
            h.rsb.push(ret);
        }
        if rec.taken {
            // The ITTAGE path history advances on *every* taken branch —
            // prediction or not — so replayed/resumed streams reconstruct
            // bit-identical state.
            if let Some(it) = &mut self.ittage {
                it.push_history(tid, rec.pc.raw(), rec.target.raw());
            }
            h.push_edge(rec.pc, rec.target);
        }
        evictions
    }
}

/// Tag-space bit separating mode-two entries from mode-one entries inside
/// the shared BTB array (mode-two tags are 8 bits, so bit 62 is free in
/// every mapper's tag space).
const MODE2_BIT: u64 = 1 << 62;

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::BaselineMapper;

    fn unit() -> (TargetUnit, BaselineMapper, HistoryCtx) {
        (
            TargetUnit::new(BtbConfig::skylake(), false),
            BaselineMapper::new(),
            HistoryCtx::new(),
        )
    }

    #[test]
    fn direct_branch_learns_target() {
        let (mut t, m, mut h) = unit();
        let rec = BranchRecord::taken(0x40_1000, BranchKind::DirectJump, 0x40_2000);
        assert!(t.predict(&m, 0, &rec, &mut h).btb_miss);
        t.update(&m, 0, &rec, &mut h, false);
        let p = t.predict(&m, 0, &rec, &mut h);
        assert_eq!(p.target, Some(rec.target));
        assert!(!p.btb_miss);
    }

    #[test]
    fn call_return_roundtrip_via_rsb() {
        let (mut t, m, mut h) = unit();
        let call = BranchRecord::taken(0x40_1000, BranchKind::DirectCall, 0x50_0000);
        t.update(&m, 0, &call, &mut h, false);
        let ret = BranchRecord::taken(0x50_0040, BranchKind::Return, call.fallthrough().raw());
        let p = t.predict(&m, 0, &ret, &mut h);
        assert_eq!(p.target, Some(call.fallthrough()));
        assert!(!p.rsb_underflow);
    }

    #[test]
    fn return_underflow_falls_back_to_indirect() {
        let (mut t, m, mut h) = unit();
        let ret = BranchRecord::taken(0x50_0040, BranchKind::Return, 0x40_1004);
        let p = t.predict(&m, 0, &ret, &mut h);
        assert!(p.rsb_underflow);
        assert_eq!(p.target, None);
        // After the underflow is learned by mode two, the same context
        // predicts correctly.
        t.update(&m, 0, &ret, &mut h, true);
        let mut h2 = HistoryCtx::new();
        let p2 = t.predict(&m, 0, &ret, &mut h2);
        assert!(p2.rsb_underflow);
        assert_eq!(p2.target, Some(ret.target));
    }

    #[test]
    fn indirect_branch_context_sensitivity() {
        // One static indirect branch with two targets distinguished by BHB
        // context: mode two must track both.
        let (mut t, m, _) = unit();
        let pc = 0x40_3000u64;
        let mk = |tgt: u64| BranchRecord::taken(pc, BranchKind::IndirectJump, tgt);

        // Context A: preceded by edge X.
        let mut ha = HistoryCtx::new();
        ha.push_edge(VirtAddr::new(0x1111_0000), VirtAddr::new(0x1));
        // Context B: preceded by edge Y.
        let mut hb = HistoryCtx::new();
        hb.push_edge(VirtAddr::new(0x2222_0000), VirtAddr::new(0x2));

        let (ta, tb) = (0x60_0000u64, 0x70_0000u64);
        // Train both contexts (update uses the pre-branch BHB).
        let mut ha2 = ha.clone();
        t.update(&m, 0, &mk(ta), &mut ha2, false);
        let mut hb2 = hb.clone();
        t.update(&m, 0, &mk(tb), &mut hb2, false);

        let pa = t.predict(&m, 0, &mk(ta), &mut ha.clone());
        let pb = t.predict(&m, 0, &mk(tb), &mut hb.clone());
        assert_eq!(pa.target, Some(VirtAddr::new(ta)));
        assert_eq!(pb.target, Some(VirtAddr::new(tb)));
    }

    #[test]
    fn truncated_storage_aliases_targets_across_4gib() {
        // Baseline stores 32 bits: a target in a different 4 GiB window
        // than the branch decodes to the wrong address — and is counted as
        // a (correctly modelled) misprediction by full models.
        let (mut t, m, mut h) = unit();
        let rec = BranchRecord::taken(0x7f_0000_1000, BranchKind::DirectJump, 0x12_3456_7890);
        t.update(&m, 0, &rec, &mut h, false);
        let p = t.predict(&m, 0, &rec, &mut h);
        let got = p.target.unwrap();
        assert_ne!(got, rec.target);
        assert_eq!(got.low32(), rec.target.low32());
    }

    #[test]
    fn conservative_full_fidelity_has_no_target_aliasing() {
        let mut t = TargetUnit::new(BtbConfig::conservative(), true);
        let m = stbpu_bpu::ConservativeMapper::new();
        let mut h = HistoryCtx::new();
        let rec = BranchRecord::taken(0x7f_0000_1000, BranchKind::DirectJump, 0x12_3456_7890);
        t.update(&m, 0, &rec, &mut h, false);
        assert_eq!(t.predict(&m, 0, &rec, &mut h).target, Some(rec.target));
    }

    #[test]
    fn partitioning_isolates_threads() {
        let (mut t, m, _) = unit();
        t.set_partitioned(true);
        let rec = BranchRecord::taken(0x40_1000, BranchKind::DirectJump, 0x40_2000);
        let mut h0 = HistoryCtx::new();
        let mut h1 = HistoryCtx::new();
        t.update(&m, 0, &rec, &mut h0, false);
        // Thread 1 must not see thread 0's entry.
        assert!(t.predict(&m, 1, &rec, &mut h1).btb_miss);
        assert!(!t.predict(&m, 0, &rec, &mut h0).btb_miss);
    }

    #[test]
    fn evictions_counted_once_per_displaced_entry() {
        let (mut t, m, mut h) = unit();
        // Fill one set beyond capacity with conflicting direct branches:
        // same index, different tags. Baseline: index bits are pc[5..14).
        let mut evictions = 0;
        for i in 0..12u64 {
            let pc = 0x40_0000 + (i << 14); // same index, different tag fold
            let rec = BranchRecord::taken(pc, BranchKind::DirectJump, 0x9000);
            evictions += t.update(&m, 0, &rec, &mut h, false);
        }
        assert!(
            evictions >= 4,
            "8-way set overfilled by 12 must evict, got {evictions}"
        );
    }
}

//! Branch predictor models for the STBPU reproduction.
//!
//! This crate implements the predictors the paper evaluates (Section VII):
//!
//! * [`SklCond`] — the Skylake-like baseline conditional predictor: a
//!   16k-entry PHT shared between a one-level (address-indexed) and a
//!   two-level (GHR-hashed, gshare-like) addressing mode with a chooser
//!   ("SKLCond" in Figure 4).
//! * [`Gshare`] — a plain gshare predictor, used for ablations.
//! * [`Tage`] — TAGE-SC-L with 8 KB and 64 KB configurations
//!   ([`TageConfig::kb8`], [`TageConfig::kb64`]) including the statistical
//!   corrector and loop predictor components.
//! * [`PerceptronPredictor`] — the Jiménez–Lin perceptron predictor.
//!
//! Direction predictors plug into [`FullBpu`] together with a
//! [`TargetUnit`] (BTB + BHB + RSB machinery shared by every model) and a
//! [`stbpu_bpu::Mapper`], producing a complete [`stbpu_bpu::Bpu`]. With the
//! [`stbpu_bpu::BaselineMapper`] you get the unprotected models; with the
//! secret-token mapper from `stbpu-core` you get the ST_* variants.
//!
//! The free constructor functions below ([`skl_baseline`] & co.) build the
//! canonical paper configurations. For string-named construction — the
//! preferred entry point for harnesses and experiments — use the
//! `ModelRegistry` in `stbpu-engine`, which exposes every one of these
//! models (and arbitrary new compositions) by name.
//!
//! # Example
//!
//! ```
//! use stbpu_bpu::{BranchRecord, Bpu};
//! use stbpu_predictors::skl_baseline;
//!
//! let mut bpu = skl_baseline();
//! // Train a loop branch: strongly taken after a few iterations.
//! for _ in 0..8 {
//!     bpu.process(0, &BranchRecord::conditional(0x4000, true, 0x4100));
//! }
//! let out = bpu.process(0, &BranchRecord::conditional(0x4000, true, 0x4100));
//! assert!(out.effective_correct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod direction;
mod full;
mod gshare;
mod ittage;
mod perceptron;
mod sklcond;
mod tage;
mod target;

pub use direction::{DirPrediction, DirectionPredictor, Provider};
pub use full::FullBpu;
pub use gshare::Gshare;
pub use ittage::{Ittage, IttageConfig, ITTAGE_BANK_BASE};
pub use perceptron::{PerceptronConfig, PerceptronPredictor};
pub use sklcond::SklCond;
pub use tage::{Tage, TageConfig};
pub use target::TargetUnit;

use stbpu_bpu::{BaselineMapper, BtbConfig, ConservativeMapper};

/// The unprotected Skylake-like baseline model (SKLCond direction predictor
/// plus baseline target machinery).
pub fn skl_baseline() -> FullBpu<SklCond, BaselineMapper> {
    FullBpu::new(
        "SKLCond",
        SklCond::new(),
        BaselineMapper::new(),
        BtbConfig::skylake(),
        false,
    )
}

/// The "conservative" protection model of Section VII-B1: full 48-bit tags
/// and targets in a half-capacity BTB.
pub fn conservative() -> FullBpu<SklCond, ConservativeMapper> {
    FullBpu::new(
        "conservative",
        SklCond::new(),
        ConservativeMapper::new(),
        BtbConfig::conservative(),
        true,
    )
}

/// Unprotected TAGE-SC-L 64 KB model.
pub fn tage64_baseline() -> FullBpu<Tage, BaselineMapper> {
    FullBpu::new(
        "TAGE_SC_L_64KB",
        Tage::new(TageConfig::kb64()),
        BaselineMapper::new(),
        BtbConfig::skylake(),
        false,
    )
}

/// Unprotected TAGE-SC-L 8 KB model.
pub fn tage8_baseline() -> FullBpu<Tage, BaselineMapper> {
    FullBpu::new(
        "TAGE_SC_L_8KB",
        Tage::new(TageConfig::kb8()),
        BaselineMapper::new(),
        BtbConfig::skylake(),
        false,
    )
}

/// Unprotected championship-class model: TAGE-SC-L 64 KB directions plus
/// an ITTAGE indirect-target stage in front of the BTB.
pub fn tagescl_baseline() -> FullBpu<Tage, BaselineMapper> {
    FullBpu::with_ittage(
        "TAGE_SC_L_ITTAGE",
        Tage::new(TageConfig::kb64()),
        BaselineMapper::new(),
        BtbConfig::skylake(),
        false,
        IttageConfig::default_tables(),
    )
}

/// Unprotected ITTAGE ablation model: the Skylake-like conditional
/// predictor with only the indirect-target stage upgraded.
pub fn ittage_baseline() -> FullBpu<SklCond, BaselineMapper> {
    FullBpu::with_ittage(
        "ITTAGE",
        SklCond::new(),
        BaselineMapper::new(),
        BtbConfig::skylake(),
        false,
        IttageConfig::default_tables(),
    )
}

/// Unprotected perceptron model.
pub fn perceptron_baseline() -> FullBpu<PerceptronPredictor, BaselineMapper> {
    FullBpu::new(
        "PerceptronBP",
        PerceptronPredictor::new(PerceptronConfig::default()),
        BaselineMapper::new(),
        BtbConfig::skylake(),
        false,
    )
}

//! The Skylake-like baseline conditional predictor ("SKLCond").
//!
//! Section II-A describes a PHT of 16k two-bit counters with *two distinct
//! addressing modes*: a simple one-level mode where the branch address finds
//! the entry (function ③), and a two-level mode where the address is hashed
//! with the GHR (function ④), gshare-style. Following the
//! reverse-engineering literature the paper cites, we share one physical
//! PHT between both modes and arbitrate with a chooser table of two-bit
//! counters — a documented generalization (see DESIGN.md §5).

use crate::direction::{DirPrediction, DirectionPredictor, Provider};
use stbpu_bpu::{
    check_len, HistoryCtx, Mapper, Pht, SaturatingCounter, SnapError, StateReader, StateWriter,
    PHT_ENTRIES,
};

/// Chooser table size (2-bit counters, address-indexed).
const CHOOSER_ENTRIES: usize = 1 << 12;

/// The hybrid one-level/two-level baseline conditional predictor.
///
/// ```
/// use stbpu_bpu::{BaselineMapper, HistoryCtx};
/// use stbpu_predictors::{DirectionPredictor, SklCond};
///
/// let mut p = SklCond::new();
/// let m = BaselineMapper::new();
/// let h = HistoryCtx::new();
/// let d = p.predict(&m, 0, 0x401000, &h);
/// p.update(&m, 0, 0x401000, &h, true, d);
/// ```
#[derive(Clone, Debug)]
pub struct SklCond {
    pht: Pht,
    /// Chooser: high half prefers the two-level mode.
    chooser: Vec<SaturatingCounter>,
}

impl SklCond {
    /// Creates the predictor with the paper's 16k-entry PHT.
    pub fn new() -> Self {
        SklCond {
            pht: Pht::new(PHT_ENTRIES),
            chooser: vec![SaturatingCounter::new(2, 2); CHOOSER_ENTRIES],
        }
    }

    fn chooser_index(pc: u64) -> usize {
        (stbpu_bpu::fold_u64(pc >> 2, 12)) as usize
    }
}

impl Default for SklCond {
    fn default() -> Self {
        SklCond::new()
    }
}

impl DirectionPredictor for SklCond {
    fn name(&self) -> &'static str {
        "SKLCond"
    }

    fn predict(&mut self, m: &dyn Mapper, tid: usize, pc: u64, h: &HistoryCtx) -> DirPrediction {
        let p1 = self.pht.predict(m.pht1(tid, pc) % self.pht.len());
        let p2 = self.pht.predict(m.pht2(tid, pc, h.ghr()) % self.pht.len());
        let use_two_level = self.chooser[Self::chooser_index(pc)].is_set();
        if use_two_level {
            DirPrediction {
                taken: p2,
                provider: Provider::TwoLevel,
            }
        } else {
            DirPrediction {
                taken: p1,
                provider: Provider::Base,
            }
        }
    }

    fn update(
        &mut self,
        m: &dyn Mapper,
        tid: usize,
        pc: u64,
        h: &HistoryCtx,
        taken: bool,
        _pred: DirPrediction,
    ) {
        let i1 = m.pht1(tid, pc) % self.pht.len();
        let i2 = m.pht2(tid, pc, h.ghr()) % self.pht.len();
        let p1 = self.pht.predict(i1);
        let p2 = self.pht.predict(i2);
        // Tournament chooser update: only when the components disagree,
        // move toward whichever was right.
        if p1 != p2 {
            self.chooser[Self::chooser_index(pc)].train(p2 == taken);
        }
        self.pht.train(i1, taken);
        self.pht.train(i2, taken);
    }

    fn flush(&mut self) {
        self.pht.flush();
        for c in &mut self.chooser {
            *c = SaturatingCounter::new(2, 2);
        }
    }

    fn save_state(&self, w: &mut StateWriter) -> Result<(), SnapError> {
        self.pht.save_state(w);
        w.usize(self.chooser.len());
        for c in &self.chooser {
            w.u8(c.value());
        }
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.pht.load_state(r)?;
        let n = r.usize()?;
        check_len(r, "SKLCond chooser", n, self.chooser.len())?;
        for c in &mut self.chooser {
            let v = r.u8()?;
            if v > c.max() {
                return Err(r.err(format!("chooser counter value {v} exceeds width")));
            }
            c.set(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::BaselineMapper;

    fn run_pattern(pattern: &[bool], reps: usize, pc: u64) -> f64 {
        let mut p = SklCond::new();
        let m = BaselineMapper::new();
        let mut h = HistoryCtx::new();
        let mut seen = 0u32;
        let mut correct = 0u32;
        let total = pattern.len() * reps;
        for (i, &taken) in pattern.iter().cycle().take(total).enumerate() {
            let d = p.predict(&m, 0, pc, &h);
            if i >= total / 2 {
                seen += 1;
                if d.taken == taken {
                    correct += 1;
                }
            }
            p.update(&m, 0, pc, &h, taken, d);
            h.push_outcome(taken);
        }
        correct as f64 / seen as f64
    }

    #[test]
    fn biased_branch_near_perfect() {
        assert!(run_pattern(&[true], 64, 0x40_1000) > 0.99);
        assert!(run_pattern(&[false], 64, 0x40_2000) > 0.99);
    }

    #[test]
    fn periodic_pattern_learned_by_two_level_mode() {
        // T T N repeating: one-level saturates at "taken" (66 % correct);
        // the chooser must migrate to the two-level mode (> 90 %).
        let acc = run_pattern(&[true, true, false], 200, 0x40_3000);
        assert!(acc > 0.9, "hybrid should learn TTN pattern, got {acc}");
    }

    #[test]
    fn alternation_learned() {
        let acc = run_pattern(&[true, false], 200, 0x40_4000);
        assert!(acc > 0.9, "hybrid should learn alternation, got {acc}");
    }

    #[test]
    fn flush_resets_chooser_and_pht() {
        let mut p = SklCond::new();
        let m = BaselineMapper::new();
        let h = HistoryCtx::new();
        for _ in 0..32 {
            let d = p.predict(&m, 0, 0x500, &h);
            p.update(&m, 0, 0x500, &h, true, d);
        }
        assert!(p.predict(&m, 0, 0x500, &h).taken);
        p.flush();
        assert!(!p.predict(&m, 0, 0x500, &h).taken);
    }

    #[test]
    fn different_mappers_reach_different_entries() {
        // The predictor itself is mapper-agnostic: two branches that alias
        // under the baseline mapper share state (the attack surface).
        let m = BaselineMapper::new();
        let h = HistoryCtx::new();
        let mut p = SklCond::new();
        let a = 0x12_3456u64;
        let b = a | (1 << 40); // aliases under truncation
        for _ in 0..8 {
            let d = p.predict(&m, 0, a, &h);
            p.update(&m, 0, a, &h, true, d);
        }
        // The aliased branch sees the trained state immediately.
        assert!(p.predict(&m, 0, b, &h).taken);
    }
}

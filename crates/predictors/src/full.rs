//! Composition of a direction predictor, target unit and mapper into a
//! complete [`Bpu`] model.

use crate::direction::{DirPrediction, DirectionPredictor};
use crate::ittage::IttageConfig;
use crate::target::TargetUnit;
use stbpu_bpu::{
    Bpu, BpuStats, BranchOutcome, BranchRecord, BtbConfig, EntityId, HistoryCtx, Mapper, SnapError,
    StateReader, StateWriter, MAX_THREADS,
};

/// A complete branch prediction unit: `D` predicts directions, a
/// [`TargetUnit`] predicts targets, and all structure addressing flows
/// through `M`.
///
/// The same composition yields every model in the paper's evaluation:
/// baseline mappers give the unprotected models, the secret-token mapper
/// (in `stbpu-core`) gives the ST_* models, and the conservative mapper
/// plus full-fidelity target unit gives the conservative model.
///
/// Event ordering matters for STBPU: all mapping calls for a branch happen
/// *before* any monitoring events are reported, so a re-randomization
/// triggered by this branch only affects subsequent branches.
pub struct FullBpu<D, M> {
    name: String,
    dir: D,
    mapper: M,
    target: TargetUnit,
    hist: Vec<HistoryCtx>,
    stats: BpuStats,
}

impl<D: DirectionPredictor, M: Mapper> FullBpu<D, M> {
    /// Builds a full model.
    pub fn new(name: &str, dir: D, mapper: M, btb: BtbConfig, full_fidelity: bool) -> Self {
        FullBpu {
            name: name.to_string(),
            dir,
            mapper,
            target: TargetUnit::new(btb, full_fidelity),
            hist: (0..MAX_THREADS).map(|_| HistoryCtx::new()).collect(),
            stats: BpuStats::new(),
        }
    }

    /// Builds a full model whose target unit carries an ITTAGE
    /// indirect-target stage in front of the BTB.
    pub fn with_ittage(
        name: &str,
        dir: D,
        mapper: M,
        btb: BtbConfig,
        full_fidelity: bool,
        ittage: IttageConfig,
    ) -> Self {
        FullBpu {
            name: name.to_string(),
            dir,
            mapper,
            target: TargetUnit::with_ittage(btb, full_fidelity, ittage),
            hist: (0..MAX_THREADS).map(|_| HistoryCtx::new()).collect(),
            stats: BpuStats::new(),
        }
    }

    /// Access to the mapper (token inspection in tests and attacks).
    pub fn mapper(&self) -> &M {
        &self.mapper
    }

    /// Mutable access to the mapper (attack harnesses install tokens).
    pub fn mapper_mut(&mut self) -> &mut M {
        &mut self.mapper
    }

    /// Access to the target unit (BTB observability for attack harnesses).
    pub fn target_unit(&self) -> &TargetUnit {
        &self.target
    }

    /// Access to the direction predictor.
    pub fn direction_predictor(&self) -> &D {
        &self.dir
    }
}

impl<D: DirectionPredictor, M: Mapper> Bpu for FullBpu<D, M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, tid: usize, rec: &BranchRecord) -> BranchOutcome {
        let tid = tid.min(MAX_THREADS - 1);
        let pc = rec.pc.raw();

        // 1. Direction prediction (conditional branches only).
        let dir_pred: Option<DirPrediction> = if rec.kind.is_conditional() {
            Some(self.dir.predict(&self.mapper, tid, pc, &self.hist[tid]))
        } else {
            None
        };
        let pred_taken = dir_pred.map(|d| d.taken).unwrap_or(true);

        // 2. Target prediction, only when the front end follows the branch.
        let tgt_pred = if pred_taken {
            Some(
                self.target
                    .predict(&self.mapper, tid, rec, &mut self.hist[tid]),
            )
        } else {
            None
        };

        // 3. Compare with the architected outcome.
        let direction_correct = dir_pred.map(|d| d.taken == rec.taken);
        let target_correct = if rec.taken {
            Some(
                tgt_pred
                    .as_ref()
                    .and_then(|t| t.target)
                    .map(|t| t == rec.target)
                    .unwrap_or(false),
            )
        } else {
            None
        };
        let effective_correct = direction_correct.unwrap_or(true) && target_correct.unwrap_or(true);
        let mispredicted = !effective_correct;
        let btb_miss = tgt_pred.as_ref().map(|t| t.btb_miss).unwrap_or(false);
        let rsb_underflow = tgt_pred.as_ref().map(|t| t.rsb_underflow).unwrap_or(false);

        // 4. Train structures (all mapping still under the current token).
        if let Some(dp) = dir_pred {
            self.dir
                .update(&self.mapper, tid, pc, &self.hist[tid], rec.taken, dp);
            self.hist[tid].push_outcome(rec.taken);
        }
        let evictions =
            self.target
                .update(&self.mapper, tid, rec, &mut self.hist[tid], rsb_underflow);

        // 5. Statistics.
        self.stats.record(rec.kind, effective_correct);
        if rec.kind.is_conditional() {
            self.stats.cond += 1;
            if direction_correct == Some(true) {
                self.stats.cond_correct += 1;
            }
        }
        if rec.taken {
            self.stats.target_needed += 1;
            if target_correct == Some(true) {
                self.stats.target_correct += 1;
            }
        }
        if mispredicted {
            self.stats.mispredictions += 1;
        }
        self.stats.btb_evictions += evictions as u64;
        if btb_miss {
            self.stats.btb_misses += 1;
        }
        if rsb_underflow {
            self.stats.rsb_underflows += 1;
        }

        // 6. Monitoring events — strictly after all mapping calls, so a
        // triggered re-randomization affects only subsequent branches.
        for _ in 0..evictions {
            self.mapper.note_eviction(tid);
        }
        if mispredicted {
            let tage_component = dir_pred
                .map(|d| direction_correct == Some(false) && d.provider.is_tage_component())
                .unwrap_or(false);
            if tage_component {
                self.mapper.note_tage_misprediction(tid);
            } else {
                self.mapper.note_misprediction(tid);
            }
        }

        BranchOutcome {
            direction_correct,
            target_correct,
            effective_correct,
            mispredicted,
            btb_miss,
        }
    }

    fn context_switch(&mut self, tid: usize, entity: EntityId) {
        self.mapper.set_entity(tid.min(MAX_THREADS - 1), entity);
    }

    fn flush(&mut self) {
        self.dir.flush();
        self.target.flush();
        for h in &mut self.hist {
            h.clear();
        }
        self.stats.flushes += 1;
    }

    fn flush_targets(&mut self) {
        self.target.flush();
        for h in &mut self.hist {
            h.rsb.clear();
        }
        self.stats.flushes += 1;
    }

    fn set_partitioned(&mut self, on: bool) {
        self.target.set_partitioned(on);
    }

    fn stats(&self) -> &BpuStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BpuStats::new();
    }

    fn rerandomizations(&self) -> u64 {
        self.mapper.rerandomizations()
    }

    fn save_state(&self, w: &mut StateWriter) -> Result<(), SnapError> {
        self.dir.save_state(w)?;
        self.mapper.save_state(w)?;
        self.target.save_state(w);
        for h in &self.hist {
            h.save_state(w);
        }
        self.stats.save_state(w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.dir.load_state(r)?;
        self.mapper.load_state(r)?;
        self.target.load_state(r)?;
        for h in &mut self.hist {
            h.load_state(r)?;
        }
        self.stats.load_state(r)?;
        r.expect_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conservative, perceptron_baseline, skl_baseline, tage8_baseline};
    use stbpu_bpu::BranchKind;

    #[test]
    fn loop_workload_reaches_high_oae() {
        let mut bpu = skl_baseline();
        // for i in 0..100 { body; } repeated: back edge taken 99x, exits 1x.
        for _rep in 0..30 {
            for i in 0..100 {
                let rec = BranchRecord::conditional(0x40_0000, i != 99, 0x40_0040);
                bpu.process(0, &rec);
            }
        }
        assert!(bpu.stats().oae() > 0.93, "loop OAE {}", bpu.stats().oae());
    }

    #[test]
    fn call_ret_chain_predicted() {
        let mut bpu = skl_baseline();
        for _ in 0..50 {
            bpu.process(
                0,
                &BranchRecord::taken(0x40_0000, BranchKind::DirectCall, 0x50_0000),
            );
            bpu.process(
                0,
                &BranchRecord::taken(0x50_0010, BranchKind::Return, 0x40_0004),
            );
        }
        let s = bpu.stats();
        assert_eq!(s.kind_oae(BranchKind::Return).map(|v| v > 0.95), Some(true));
    }

    #[test]
    fn not_taken_branch_needs_no_target() {
        let mut bpu = skl_baseline();
        // Train not-taken.
        for _ in 0..8 {
            bpu.process(0, &BranchRecord::not_taken(0x40_0100));
        }
        let out = bpu.process(0, &BranchRecord::not_taken(0x40_0100));
        assert_eq!(out.direction_correct, Some(true));
        assert_eq!(out.target_correct, None);
        assert!(out.effective_correct);
    }

    #[test]
    fn flush_loses_history() {
        let mut bpu = skl_baseline();
        let rec = BranchRecord::taken(0x40_0000, BranchKind::DirectJump, 0x41_0000);
        bpu.process(0, &rec);
        assert!(bpu.process(0, &rec).effective_correct);
        bpu.flush();
        let out = bpu.process(0, &rec);
        assert!(out.btb_miss, "flushed BTB must miss");
        assert_eq!(bpu.stats().flushes, 1);
    }

    #[test]
    fn all_models_handle_mixed_stream() {
        // Smoke-test every baseline model on a mixed branch stream.
        let recs = [
            BranchRecord::conditional(0x1000, true, 0x2000),
            BranchRecord::taken(0x2000, BranchKind::DirectCall, 0x3000),
            BranchRecord::taken(0x3010, BranchKind::IndirectJump, 0x4000),
            BranchRecord::taken(0x4010, BranchKind::Return, 0x2004),
            BranchRecord::not_taken(0x2004),
        ];
        let mut models: Vec<Box<dyn Bpu>> = vec![
            Box::new(skl_baseline()),
            Box::new(tage8_baseline()),
            Box::new(perceptron_baseline()),
            Box::new(conservative()),
        ];
        for m in &mut models {
            for _ in 0..20 {
                for r in &recs {
                    m.process(0, r);
                }
            }
            assert_eq!(m.stats().branches, 100);
            assert!(
                m.stats().oae() > 0.5,
                "{}: OAE {}",
                m.name(),
                m.stats().oae()
            );
        }
    }

    #[test]
    fn smt_threads_share_btb_but_not_history() {
        let mut bpu = skl_baseline();
        let rec = BranchRecord::taken(0x40_0000, BranchKind::DirectJump, 0x41_0000);
        bpu.process(0, &rec);
        // Unpartitioned: thread 1 reuses thread 0's BTB entry (the SMT
        // collision channel of Table I).
        let out = bpu.process(1, &rec);
        assert!(out.effective_correct, "shared BTB must hit across threads");
        // Partitioned (STIBP): isolated.
        let mut bpu2 = skl_baseline();
        bpu2.set_partitioned(true);
        bpu2.process(0, &rec);
        let out2 = bpu2.process(1, &rec);
        assert!(out2.btb_miss, "STIBP partition must isolate threads");
    }

    #[test]
    fn stats_reset_keeps_predictor_state() {
        let mut bpu = skl_baseline();
        let rec = BranchRecord::taken(0x40_0000, BranchKind::DirectJump, 0x41_0000);
        bpu.process(0, &rec);
        bpu.reset_stats();
        assert_eq!(bpu.stats().branches, 0);
        // Predictor state survived: immediate hit.
        assert!(bpu.process(0, &rec).effective_correct);
    }
}

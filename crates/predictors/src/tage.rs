//! TAGE-SC-L: a TAgged GEometric-history-length predictor with a
//! statistical corrector (SC) and a loop predictor (L), after Seznec [67].
//!
//! The paper evaluates STBPU on TAGE-SC-L 8 KB and 64 KB configurations
//! (Section VII-B2). All table addressing is routed through the
//! [`Mapper`]'s `tage` function (function t / Rt of Table II), so the same
//! implementation serves the unprotected and the secret-token models. The
//! SC and loop components are addressed through the same keyed function
//! using bank ids above the tagged tables.

use crate::direction::{DirPrediction, DirectionPredictor, Provider};
use stbpu_bpu::{
    check_len, HistoryCtx, Mapper, Pht, SnapError, StateReader, StateWriter, MAX_THREADS,
};

/// Geometry of a TAGE-SC-L instance.
#[derive(Clone, Debug)]
pub struct TageConfig {
    /// Model name ("TAGE_SC_L_64KB", ...).
    pub name: &'static str,
    /// Number of tagged tables.
    pub tagged_tables: usize,
    /// log2 entries per tagged table.
    pub idx_bits: u32,
    /// Tag width per tagged table.
    pub tag_bits: u32,
    /// Geometric history lengths, shortest first (one per tagged table).
    pub hist_lengths: Vec<u32>,
    /// log2 entries of the bimodal base table.
    pub bimodal_bits: u32,
    /// Enable the statistical corrector.
    pub use_sc: bool,
    /// Enable the loop predictor.
    pub use_loop: bool,
}

impl TageConfig {
    /// The 64 KB-class configuration: 12 tagged tables × 2048 entries with
    /// 12-bit tags, histories 4..1163, 16k bimodal, SC + loop.
    pub fn kb64() -> Self {
        TageConfig {
            name: "TAGE_SC_L_64KB",
            tagged_tables: 12,
            idx_bits: 11,
            tag_bits: 12,
            hist_lengths: vec![4, 7, 12, 20, 34, 56, 93, 154, 256, 424, 702, 1163],
            bimodal_bits: 14,
            use_sc: true,
            use_loop: true,
        }
    }

    /// The 8 KB-class configuration: 10 tagged tables × 256 entries with
    /// 8-bit tags, histories 2..265, 8k bimodal, SC + loop.
    pub fn kb8() -> Self {
        TageConfig {
            name: "TAGE_SC_L_8KB",
            tagged_tables: 10,
            idx_bits: 8,
            tag_bits: 8,
            hist_lengths: vec![2, 4, 8, 13, 21, 35, 58, 96, 160, 265],
            bimodal_bits: 13,
            use_sc: true,
            use_loop: true,
        }
    }

    /// Approximate storage budget in bytes (tagged + bimodal tables).
    pub fn storage_bytes(&self) -> usize {
        let tagged_bits =
            self.tagged_tables * (1 << self.idx_bits) * (self.tag_bits as usize + 3 + 2);
        let bimodal_bits = (1 << self.bimodal_bits) * 2;
        (tagged_bits + bimodal_bits) / 8
    }
}

/// Maximum global-history bits retained per thread.
const HIST_CAP: usize = 2048;
/// Statistical-corrector tables (history lengths below).
const SC_TABLES: usize = 3;
const SC_HIST: [u32; SC_TABLES] = [0, 4, 10];
const SC_IDX_BITS: u32 = 10;
const SC_THRESHOLD: i32 = 8;
/// Loop predictor geometry.
const LOOP_IDX_BITS: u32 = 6;
const LOOP_TAG_BITS: u32 = 10;
const LOOP_CONF_MAX: u8 = 3;

#[derive(Clone, Copy, Default)]
struct TageEntry {
    tag: u64,
    /// 3-bit signed counter, −4..=3; taken when ≥ 0.
    ctr: i8,
    /// 2-bit useful counter.
    u: u8,
}

#[derive(Clone, Copy, Default)]
struct LoopEntry {
    tag: u64,
    past_iter: u16,
    curr_iter: u16,
    conf: u8,
    dir: bool,
    valid: bool,
}

/// Folded-history register (Seznec's circular shift register fold).
#[derive(Clone, Copy, Debug, Default)]
struct Fold {
    comp: u64,
    clen: u32,
    #[allow(dead_code)] // retained: documents the window each fold covers
    olen: u32,
    outpoint: u32,
}

impl Fold {
    fn new(olen: u32, clen: u32) -> Self {
        Fold {
            comp: 0,
            clen: clen.max(1),
            olen,
            outpoint: olen % clen.max(1),
        }
    }

    /// Updates the fold after `newest` was pushed into the history whose
    /// bit at distance `olen` (post-push) is `oldest`.
    fn update(&mut self, newest: bool, oldest: bool) {
        self.comp = (self.comp << 1) | newest as u64;
        self.comp ^= (oldest as u64) << self.outpoint;
        self.comp ^= self.comp >> self.clen;
        self.comp &= (1u64 << self.clen) - 1;
    }
}

/// Per-hardware-thread history state.
#[derive(Clone)]
struct ThreadState {
    bits: Vec<bool>,
    ptr: usize,
    folded_idx: Vec<Fold>,
    folded_tag: Vec<Fold>,
    sc_folds: [Fold; SC_TABLES],
    scratch: Scratch,
}

impl ThreadState {
    fn new(cfg: &TageConfig) -> Self {
        ThreadState {
            bits: vec![false; HIST_CAP],
            ptr: 0,
            folded_idx: cfg
                .hist_lengths
                .iter()
                .map(|&l| Fold::new(l, cfg.idx_bits))
                .collect(),
            folded_tag: cfg
                .hist_lengths
                .iter()
                .map(|&l| Fold::new(l, cfg.tag_bits))
                .collect(),
            sc_folds: [
                Fold::new(SC_HIST[0], SC_IDX_BITS),
                Fold::new(SC_HIST[1], SC_IDX_BITS),
                Fold::new(SC_HIST[2], SC_IDX_BITS),
            ],
            scratch: Scratch::default(),
        }
    }

    fn bit(&self, back: usize) -> bool {
        self.bits[(self.ptr + HIST_CAP - 1 - back) % HIST_CAP]
    }

    fn push(&mut self, b: bool, hist_lengths: &[u32]) {
        self.bits[self.ptr] = b;
        self.ptr = (self.ptr + 1) % HIST_CAP;
        for (i, &l) in hist_lengths.iter().enumerate() {
            let oldest = self.bit(l as usize);
            self.folded_idx[i].update(b, oldest);
            self.folded_tag[i].update(b, oldest);
        }
        for (k, &l) in SC_HIST.iter().enumerate() {
            if l > 0 {
                let oldest = self.bit(l as usize);
                self.sc_folds[k].update(b, oldest);
            }
        }
    }

    fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
        self.ptr = 0;
        for f in self.folded_idx.iter_mut().chain(self.folded_tag.iter_mut()) {
            f.comp = 0;
        }
        for f in &mut self.sc_folds {
            f.comp = 0;
        }
    }
}

/// Prediction-time scratch reused by `update` (indices, provider, etc.).
#[derive(Clone, Default)]
struct Scratch {
    indices: Vec<usize>,
    tags: Vec<u64>,
    provider: Option<usize>,
    alt: Option<usize>,
    provider_pred: bool,
    alt_pred: bool,
    newly_alloc: bool,
    base_idx: usize,
    tage_pred: bool,
    loop_idx: usize,
    loop_tag: u64,
    loop_hit_confident: bool,
    loop_pred: bool,
    sc_idx: [usize; SC_TABLES],
    sc_sum: i32,
    sc_used: bool,
}

/// The TAGE-SC-L direction predictor.
///
/// ```
/// use stbpu_bpu::{BaselineMapper, HistoryCtx};
/// use stbpu_predictors::{DirectionPredictor, Tage, TageConfig};
///
/// let mut t = Tage::new(TageConfig::kb8());
/// let m = BaselineMapper::new();
/// let h = HistoryCtx::new();
/// let p = t.predict(&m, 0, 0x1000, &h);
/// t.update(&m, 0, 0x1000, &h, true, p);
/// ```
#[derive(Clone)]
pub struct Tage {
    cfg: TageConfig,
    tables: Vec<Vec<TageEntry>>,
    bimodal: Pht,
    sc: [Vec<i8>; SC_TABLES],
    loops: Vec<LoopEntry>,
    threads: Vec<ThreadState>,
    /// use-alt-on-newly-allocated counter (−8..=7; ≥ 0 means use alt).
    use_alt: i8,
    /// Aging tick for useful bits.
    tick: u32,
    /// Deterministic allocation randomness.
    lfsr: u64,
}

impl Tage {
    /// Creates a TAGE-SC-L predictor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `hist_lengths` does not have one entry per tagged table or
    /// exceeds the history capacity.
    pub fn new(cfg: TageConfig) -> Self {
        assert_eq!(
            cfg.hist_lengths.len(),
            cfg.tagged_tables,
            "one history length per tagged table"
        );
        assert!(
            cfg.hist_lengths
                .iter()
                .all(|&l| (l as usize) < HIST_CAP - 1),
            "history length exceeds capacity"
        );
        let tables = vec![vec![TageEntry::default(); 1 << cfg.idx_bits]; cfg.tagged_tables];
        let threads = (0..MAX_THREADS).map(|_| ThreadState::new(&cfg)).collect();
        Tage {
            tables,
            bimodal: Pht::new(1 << cfg.bimodal_bits),
            sc: [
                vec![0i8; 1 << SC_IDX_BITS],
                vec![0i8; 1 << SC_IDX_BITS],
                vec![0i8; 1 << SC_IDX_BITS],
            ],
            loops: vec![LoopEntry::default(); 1 << LOOP_IDX_BITS],
            threads,
            use_alt: 0,
            tick: 0,
            lfsr: 0xace1_2345_6789_abcd,
            cfg,
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    fn rand_bit(&mut self) -> bool {
        // xorshift64
        self.lfsr ^= self.lfsr << 13;
        self.lfsr ^= self.lfsr >> 7;
        self.lfsr ^= self.lfsr << 17;
        self.lfsr & 1 == 1
    }

    fn loop_lookup(&self, m: &dyn Mapper, tid: usize, pc: u64, s: &mut Scratch) {
        let bank = self.cfg.tagged_tables + SC_TABLES;
        let (idx, tag) = m.tage(tid, pc, 0, 0, bank, LOOP_IDX_BITS, LOOP_TAG_BITS);
        s.loop_idx = idx % self.loops.len();
        s.loop_tag = tag;
        let e = &self.loops[s.loop_idx];
        if e.valid && e.tag == s.loop_tag && e.conf >= LOOP_CONF_MAX && e.past_iter > 0 {
            s.loop_hit_confident = true;
            // Predict the loop exit once the observed trip count is reached
            // (`curr_iter` counts the in-loop outcomes of this cycle).
            s.loop_pred = if e.curr_iter >= e.past_iter {
                !e.dir
            } else {
                e.dir
            };
        } else {
            s.loop_hit_confident = false;
        }
    }

    fn loop_update(&mut self, taken: bool, tage_mispredicted: bool, s: &Scratch) {
        let e = &mut self.loops[s.loop_idx];
        if e.valid && e.tag == s.loop_tag {
            if taken == e.dir {
                // Keep counting even past the recorded trip count: the next
                // exit re-trains `past_iter` (first cycles after allocation
                // usually undercount because allocation happened mid-loop).
                e.curr_iter = e.curr_iter.saturating_add(1);
            } else {
                // Loop exit observed.
                if e.curr_iter == e.past_iter && e.past_iter > 0 {
                    e.conf = (e.conf + 1).min(LOOP_CONF_MAX);
                } else {
                    e.past_iter = e.curr_iter;
                    e.conf = 0;
                }
                e.curr_iter = 0;
            }
        } else if tage_mispredicted && taken {
            // Allocate on a mispredicted taken branch (candidate loop back
            // edge).
            self.loops[s.loop_idx] = LoopEntry {
                tag: s.loop_tag,
                past_iter: 0,
                curr_iter: 1,
                conf: 0,
                dir: taken,
                valid: true,
            };
        }
    }
}

impl DirectionPredictor for Tage {
    fn name(&self) -> &'static str {
        self.cfg.name
    }

    fn predict(&mut self, m: &dyn Mapper, tid: usize, pc: u64, _h: &HistoryCtx) -> DirPrediction {
        let n = self.cfg.tagged_tables;
        let mut s = Scratch {
            indices: Vec::with_capacity(n),
            tags: Vec::with_capacity(n),
            ..Scratch::default()
        };

        // Tagged lookups (keyed through the mapper, one per bank).
        {
            let t = &self.threads[tid];
            for i in 0..n {
                let (idx, tag) = m.tage(
                    tid,
                    pc,
                    t.folded_idx[i].comp,
                    t.folded_tag[i].comp,
                    i,
                    self.cfg.idx_bits,
                    self.cfg.tag_bits,
                );
                s.indices.push(idx & ((1 << self.cfg.idx_bits) - 1));
                s.tags.push(tag & ((1u64 << self.cfg.tag_bits) - 1));
            }
        }
        s.base_idx = m.pht1(tid, pc) & ((1 << self.cfg.bimodal_bits) - 1);
        let base_pred = self.bimodal.predict(s.base_idx);

        for i in (0..n).rev() {
            if self.tables[i][s.indices[i]].tag == s.tags[i] {
                if s.provider.is_none() {
                    s.provider = Some(i);
                } else if s.alt.is_none() {
                    s.alt = Some(i);
                    break;
                }
            }
        }
        s.alt_pred = match s.alt {
            Some(a) => self.tables[a][s.indices[a]].ctr >= 0,
            None => base_pred,
        };
        s.tage_pred = match s.provider {
            Some(p) => {
                let e = &self.tables[p][s.indices[p]];
                s.provider_pred = e.ctr >= 0;
                s.newly_alloc = e.u == 0 && (e.ctr == 0 || e.ctr == -1);
                if s.newly_alloc && self.use_alt >= 0 {
                    s.alt_pred
                } else {
                    s.provider_pred
                }
            }
            None => base_pred,
        };

        let mut pred = s.tage_pred;
        let mut provider = match s.provider {
            Some(p) => Provider::TageTable(p),
            None => Provider::Base,
        };

        // Statistical corrector: consulted when the TAGE prediction is
        // weakly confident.
        if self.cfg.use_sc {
            let t = &self.threads[tid];
            let mut sum = 0i32;
            for k in 0..SC_TABLES {
                let (idx, _) = m.tage(
                    tid,
                    pc,
                    t.sc_folds[k].comp,
                    0,
                    self.cfg.tagged_tables + k,
                    SC_IDX_BITS,
                    1,
                );
                let idx = idx & ((1 << SC_IDX_BITS) - 1);
                s.sc_idx[k] = idx;
                sum += (2 * self.sc[k][idx] as i32 + 1) * if s.tage_pred { 1 } else { -1 };
            }
            s.sc_sum = sum;
            let weak = s.provider.is_none() || s.newly_alloc;
            if weak && sum < -SC_THRESHOLD {
                pred = !s.tage_pred;
                provider = Provider::StatisticalCorrector;
                s.sc_used = true;
            }
        }

        // Loop predictor: overrides everything when confident.
        if self.cfg.use_loop {
            self.loop_lookup(m, tid, pc, &mut s);
            if s.loop_hit_confident {
                pred = s.loop_pred;
                provider = Provider::Loop;
            }
        }

        self.threads[tid].scratch = s;
        DirPrediction {
            taken: pred,
            provider,
        }
    }

    fn update(
        &mut self,
        _m: &dyn Mapper,
        tid: usize,
        _pc: u64,
        _h: &HistoryCtx,
        taken: bool,
        _pred: DirPrediction,
    ) {
        let s = self.threads[tid].scratch.clone();
        let n = self.cfg.tagged_tables;
        let tage_mispredicted = s.tage_pred != taken;

        // Loop predictor update.
        if self.cfg.use_loop {
            self.loop_update(taken, tage_mispredicted, &s);
        }

        // Statistical corrector training: when consulted or near the
        // decision threshold.
        if self.cfg.use_sc && (s.sc_used || s.sc_sum.abs() <= SC_THRESHOLD * 2) {
            for k in 0..SC_TABLES {
                let c = &mut self.sc[k][s.sc_idx[k]];
                if taken {
                    *c = (*c + 1).min(31);
                } else {
                    *c = (*c - 1).max(-32);
                }
            }
        }

        match s.provider {
            Some(p) => {
                // use-alt bookkeeping on newly allocated entries.
                if s.newly_alloc && s.provider_pred != s.alt_pred {
                    let d = if s.alt_pred == taken { 1 } else { -1 };
                    self.use_alt = (self.use_alt + d).clamp(-8, 7);
                }
                let e = &mut self.tables[p][s.indices[p]];
                // Useful bit: provider differed from alternate and was right.
                if s.provider_pred != s.alt_pred {
                    if s.provider_pred == taken {
                        e.u = (e.u + 1).min(3);
                    } else {
                        e.u = e.u.saturating_sub(1);
                    }
                }
                e.ctr = if taken {
                    (e.ctr + 1).min(3)
                } else {
                    (e.ctr - 1).max(-4)
                };
                // Train the alternate path while the provider is young.
                if s.newly_alloc {
                    match s.alt {
                        Some(a) => {
                            let ae = &mut self.tables[a][s.indices[a]];
                            ae.ctr = if taken {
                                (ae.ctr + 1).min(3)
                            } else {
                                (ae.ctr - 1).max(-4)
                            };
                        }
                        None => self.bimodal.train(s.base_idx, taken),
                    }
                }
            }
            None => self.bimodal.train(s.base_idx, taken),
        }

        // Allocation on misprediction in a longer-history table.
        let start = s.provider.map(|p| p + 1).unwrap_or(0);
        if tage_mispredicted && start < n {
            let mut candidates: Vec<usize> = (start..n)
                .filter(|&j| self.tables[j][s.indices[j]].u == 0)
                .collect();
            if candidates.is_empty() {
                for j in start..n {
                    let e = &mut self.tables[j][s.indices[j]];
                    e.u = e.u.saturating_sub(1);
                }
                self.tick += 1;
                // Graceful aging: periodically halve all useful counters so
                // stale entries become reclaimable.
                if self.tick >= 1 << 14 {
                    self.tick = 0;
                    for table in &mut self.tables {
                        for e in table.iter_mut() {
                            e.u >>= 1;
                        }
                    }
                }
            } else {
                // Prefer the shortest eligible history, skipping one with
                // probability 1/2 (Seznec's allocation policy).
                let mut pick = candidates.remove(0);
                if !candidates.is_empty() && self.rand_bit() {
                    pick = candidates.remove(0);
                }
                self.tables[pick][s.indices[pick]] = TageEntry {
                    tag: s.tags[pick],
                    ctr: if taken { 0 } else { -1 },
                    u: 0,
                };
            }
        }

        // Advance this thread's global history and folds.
        let lens = self.cfg.hist_lengths.clone();
        self.threads[tid].push(taken, &lens);
    }

    fn flush(&mut self) {
        for t in &mut self.tables {
            t.iter_mut().for_each(|e| *e = TageEntry::default());
        }
        self.bimodal.flush();
        for t in &mut self.sc {
            t.iter_mut().for_each(|c| *c = 0);
        }
        self.loops
            .iter_mut()
            .for_each(|e| *e = LoopEntry::default());
        for th in &mut self.threads {
            th.clear();
        }
        self.use_alt = 0;
        self.tick = 0;
    }

    // Everything mutable is serialized except the per-thread `scratch`,
    // which is only live between a `predict` and its paired `update` —
    // checkpoints are taken between retired branches, where it is dead.
    fn save_state(&self, w: &mut StateWriter) -> Result<(), SnapError> {
        w.usize(self.tables.len());
        for table in &self.tables {
            w.usize(table.len());
            for e in table {
                w.u64(e.tag);
                w.i64(i64::from(e.ctr));
                w.u8(e.u);
            }
        }
        self.bimodal.save_state(w);
        for table in &self.sc {
            for c in table {
                w.i64(i64::from(*c));
            }
        }
        w.usize(self.loops.len());
        for e in &self.loops {
            w.u64(e.tag);
            w.u32(u32::from(e.past_iter));
            w.u32(u32::from(e.curr_iter));
            w.u8(e.conf);
            w.bool(e.dir);
            w.bool(e.valid);
        }
        w.usize(self.threads.len());
        for t in &self.threads {
            for b in &t.bits {
                w.bool(*b);
            }
            w.usize(t.ptr);
            for f in t.folded_idx.iter().chain(t.folded_tag.iter()) {
                w.u64(f.comp);
            }
            for f in &t.sc_folds {
                w.u64(f.comp);
            }
        }
        w.i64(i64::from(self.use_alt));
        w.u32(self.tick);
        w.u64(self.lfsr);
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let nt = r.usize()?;
        check_len(r, "TAGE tagged tables", nt, self.tables.len())?;
        for table in &mut self.tables {
            let n = r.usize()?;
            check_len(r, "TAGE table", n, table.len())?;
            for e in table.iter_mut() {
                e.tag = r.u64()?;
                let ctr = r.i64()?;
                if !(-4..=3).contains(&ctr) {
                    return Err(r.err(format!("TAGE counter {ctr} out of range")));
                }
                e.ctr = ctr as i8;
                e.u = r.u8()?;
                if e.u > 3 {
                    return Err(r.err(format!("TAGE useful bits {} out of range", e.u)));
                }
            }
        }
        self.bimodal.load_state(r)?;
        for table in &mut self.sc {
            for c in table.iter_mut() {
                let v = r.i64()?;
                if !(-32..=31).contains(&v) {
                    return Err(r.err(format!("SC counter {v} out of range")));
                }
                *c = v as i8;
            }
        }
        let nl = r.usize()?;
        check_len(r, "loop table", nl, self.loops.len())?;
        for e in &mut self.loops {
            e.tag = r.u64()?;
            let past = r.u32()?;
            let curr = r.u32()?;
            e.past_iter = u16::try_from(past)
                .map_err(|_| r.err(format!("loop past_iter {past} out of range")))?;
            e.curr_iter = u16::try_from(curr)
                .map_err(|_| r.err(format!("loop curr_iter {curr} out of range")))?;
            e.conf = r.u8()?;
            e.dir = r.bool()?;
            e.valid = r.bool()?;
        }
        let nthreads = r.usize()?;
        check_len(r, "TAGE threads", nthreads, self.threads.len())?;
        for t in &mut self.threads {
            for b in &mut t.bits {
                *b = r.bool()?;
            }
            let ptr = r.usize()?;
            if ptr >= HIST_CAP {
                return Err(r.err(format!("history pointer {ptr} out of range")));
            }
            t.ptr = ptr;
            for f in t.folded_idx.iter_mut().chain(t.folded_tag.iter_mut()) {
                f.comp = r.u64()?;
            }
            for f in &mut t.sc_folds {
                f.comp = r.u64()?;
            }
            t.scratch = Scratch::default();
        }
        let ua = r.i64()?;
        if !(-8..=7).contains(&ua) {
            return Err(r.err(format!("use_alt {ua} out of range")));
        }
        self.use_alt = ua as i8;
        self.tick = r.u32()?;
        self.lfsr = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::BaselineMapper;

    fn accuracy(t: &mut Tage, pattern: &[bool], reps: usize, pc: u64) -> f64 {
        let m = BaselineMapper::new();
        let h = HistoryCtx::new();
        let total = pattern.len() * reps;
        let mut seen = 0;
        let mut correct = 0;
        for (i, &taken) in pattern.iter().cycle().take(total).enumerate() {
            let p = t.predict(&m, 0, pc, &h);
            if i >= total / 2 {
                seen += 1;
                if p.taken == taken {
                    correct += 1;
                }
            }
            t.update(&m, 0, pc, &h, taken, p);
        }
        correct as f64 / seen as f64
    }

    #[test]
    fn fold_tracks_window() {
        // The fold must be a function of exactly the last `olen` bits: two
        // sequences with different prefixes but identical suffixes converge,
        // and an all-zero window folds to zero.
        let run = |seq: &[bool]| {
            let mut f = Fold::new(8, 4);
            let mut hist = vec![false; 64];
            for &b in seq {
                hist.insert(0, b);
                f.update(b, hist[8]);
            }
            f.comp
        };
        let suffix = [true, false, false, true, true, false, true, false];
        let mut a = vec![true, true, true, false];
        a.extend_from_slice(&suffix);
        let mut b = vec![false, true, false, true, true];
        b.extend_from_slice(&suffix);
        assert_eq!(run(&a), run(&b), "fold must depend only on the window");
        assert_ne!(run(&a), 0, "nontrivial window should fold nonzero");

        let mut z = vec![true; 8];
        z.extend_from_slice(&[false; 8]);
        assert_eq!(run(&z), 0, "all-zero window must fold to zero");
    }

    #[test]
    fn biased_branch_learned() {
        let mut t = Tage::new(TageConfig::kb8());
        assert!(accuracy(&mut t, &[true], 64, 0x40_1000) > 0.99);
    }

    #[test]
    fn long_period_pattern_learned_by_tagged_tables() {
        // Period-9 pattern is beyond a bimodal and most simple gshare
        // setups at this table size; TAGE should nail it.
        let pattern = [true, true, true, false, true, false, false, true, false];
        let mut t = Tage::new(TageConfig::kb8());
        let acc = accuracy(&mut t, &pattern, 400, 0x40_2000);
        assert!(acc > 0.95, "TAGE should learn period-9 pattern, got {acc}");
    }

    #[test]
    fn kb64_beats_kb8_on_hard_pattern() {
        // A long pseudo-random-but-periodic pattern: the bigger predictor
        // should do at least as well.
        let pattern: Vec<bool> = (0..37).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let mut t8 = Tage::new(TageConfig::kb8());
        let mut t64 = Tage::new(TageConfig::kb64());
        let a8 = accuracy(&mut t8, &pattern, 200, 0x40_3000);
        let a64 = accuracy(&mut t64, &pattern, 200, 0x40_3000);
        assert!(
            a64 >= a8 - 0.02,
            "64KB ({a64}) should not lose to 8KB ({a8})"
        );
        assert!(a64 > 0.9, "64KB should learn period-37, got {a64}");
    }

    #[test]
    fn loop_predictor_catches_fixed_trip_count() {
        // 23 taken then 1 not-taken, repeatedly — classic loop branch.
        let mut pattern = vec![true; 23];
        pattern.push(false);
        let mut t = Tage::new(TageConfig::kb8());
        let acc = accuracy(&mut t, &pattern, 120, 0x40_4000);
        assert!(
            acc > 0.97,
            "loop predictor should catch trip count 24, got {acc}"
        );
    }

    #[test]
    fn flush_forgets_everything() {
        let mut t = Tage::new(TageConfig::kb8());
        let _ = accuracy(&mut t, &[true], 32, 0x40_5000);
        t.flush();
        let m = BaselineMapper::new();
        let h = HistoryCtx::new();
        let p = t.predict(&m, 0, 0x40_5000, &h);
        assert!(!p.taken, "cold predictor must default to not-taken");
        assert!(matches!(p.provider, Provider::Base));
    }

    #[test]
    fn storage_budgets_are_plausible() {
        let s8 = TageConfig::kb8().storage_bytes();
        let s64 = TageConfig::kb64().storage_bytes();
        assert!(s8 > 4 * 1024 && s8 < 10 * 1024, "8KB-class size {s8}");
        assert!(s64 > 40 * 1024 && s64 < 80 * 1024, "64KB-class size {s64}");
    }

    #[test]
    fn threads_have_independent_history() {
        let mut t = Tage::new(TageConfig::kb8());
        let m = BaselineMapper::new();
        let h = HistoryCtx::new();
        // Train thread 0 on alternation at pc A; thread 1 sees all-taken at
        // the same pc. Their histories must not interfere structurally
        // (shared tables, private folds) — just verify no panic and both
        // learn their bias eventually.
        let mut ok0 = 0;
        let mut ok1 = 0;
        let mut taken0 = false;
        for i in 0..600 {
            taken0 = !taken0;
            let p0 = t.predict(&m, 0, 0xa000, &h);
            if i > 300 && p0.taken == taken0 {
                ok0 += 1;
            }
            t.update(&m, 0, 0xa000, &h, taken0, p0);

            let p1 = t.predict(&m, 1, 0xb000, &h);
            if i > 300 && p1.taken {
                ok1 += 1;
            }
            t.update(&m, 1, 0xb000, &h, true, p1);
        }
        assert!(ok0 > 250, "thread 0 alternation: {ok0}/299");
        assert!(ok1 > 280, "thread 1 bias: {ok1}/299");
    }

    #[test]
    #[should_panic(expected = "one history length per tagged table")]
    fn mismatched_config_rejected() {
        let mut cfg = TageConfig::kb8();
        cfg.hist_lengths.pop();
        let _ = Tage::new(cfg);
    }
}

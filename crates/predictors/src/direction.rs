//! The direction-predictor abstraction shared by all conditional predictors.

use stbpu_bpu::{HistoryCtx, Mapper, SnapError, StateReader, StateWriter};

/// Which component produced a direction prediction.
///
/// STBPU's TAGE models keep a *separate* re-randomization threshold register
/// for mispredictions whose provider was a TAGE tagged table
/// (Section VII-B2), so the provider must be visible to the full model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Provider {
    /// Base / one-level / bimodal component.
    Base,
    /// Two-level (history-hashed) component.
    TwoLevel,
    /// A TAGE tagged table (0-based bank index).
    TageTable(usize),
    /// The loop predictor.
    Loop,
    /// The statistical corrector.
    StatisticalCorrector,
    /// A perceptron.
    Perceptron,
}

impl Provider {
    /// True when the provider is a TAGE tagged component (tagged table,
    /// loop predictor or statistical corrector) — routed to the separate
    /// TAGE threshold register under STBPU.
    pub fn is_tage_component(self) -> bool {
        matches!(
            self,
            Provider::TageTable(_) | Provider::Loop | Provider::StatisticalCorrector
        )
    }
}

/// A direction prediction with provider metadata.
#[derive(Clone, Copy, Debug)]
pub struct DirPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Component that provided the prediction.
    pub provider: Provider,
}

/// A conditional-branch direction predictor.
///
/// `predict` is always followed by exactly one `update` for the same branch
/// before the next `predict` on the same hardware thread — implementations
/// may stash per-thread scratch state between the two calls (TAGE does,
/// to avoid recomputing tagged-table lookups).
///
/// All mapping is routed through the supplied [`Mapper`], which is how the
/// same predictor code runs unprotected (baseline mapper) or secret-token
/// protected (ST mapper): the predictor never sees raw indexes.
pub trait DirectionPredictor {
    /// Model name fragment used in reports.
    fn name(&self) -> &'static str;

    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, m: &dyn Mapper, tid: usize, pc: u64, h: &HistoryCtx) -> DirPrediction;

    /// Trains the predictor with the resolved direction. `pred` must be the
    /// value returned by the immediately preceding `predict` call for this
    /// thread.
    fn update(
        &mut self,
        m: &dyn Mapper,
        tid: usize,
        pc: u64,
        h: &HistoryCtx,
        taken: bool,
        pred: DirPrediction,
    );

    /// Clears all predictor state (flush-based protections).
    fn flush(&mut self);

    /// Serializes all predictor tables for `.stck` checkpoints. The default
    /// refuses, so exotic external predictors fail loudly rather than
    /// checkpoint an incomplete state.
    fn save_state(&self, _w: &mut StateWriter) -> Result<(), SnapError> {
        Err(SnapError::unsupported(self.name()))
    }

    /// Restores tables written by [`DirectionPredictor::save_state`] into a
    /// predictor constructed with identical configuration.
    fn load_state(&mut self, _r: &mut StateReader<'_>) -> Result<(), SnapError> {
        Err(SnapError::unsupported(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tage_components_classified() {
        assert!(Provider::TageTable(3).is_tage_component());
        assert!(Provider::Loop.is_tage_component());
        assert!(Provider::StatisticalCorrector.is_tage_component());
        assert!(!Provider::Base.is_tage_component());
        assert!(!Provider::TwoLevel.is_tage_component());
        assert!(!Provider::Perceptron.is_tage_component());
    }
}

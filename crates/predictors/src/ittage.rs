//! ITTAGE — tagged-geometric indirect-target prediction (Seznec).
//!
//! The BTB's two addressing modes capture at most one target per branch
//! context; championship-class front ends instead predict indirect
//! targets with an ITTAGE: a family of tagged tables indexed by
//! geometrically growing folds of a global path history, each entry
//! holding a full predicted target with a confidence counter. The longest
//! matching history provides the prediction; weak (newly allocated)
//! providers defer to the next-longest match.
//!
//! This implementation plugs into [`crate::TargetUnit`] as an optional
//! stage consulted before the BTB for indirect branches:
//!
//! * **Payloads are opaque.** Entries store whatever 64-bit payload the
//!   target unit encodes — the truncated 32-bit target for baseline
//!   models, the φ-encrypted value for STBPU models, the full 48-bit
//!   address for the conservative model — so ST-protection of stored
//!   targets composes for free.
//! * **Addressing flows through the mapper.** Every index/tag derivation
//!   calls [`Mapper::tage`] with banks starting at [`ITTAGE_BANK_BASE`],
//!   far above any direction-predictor bank, so the secret-token mapper
//!   remaps ITTAGE set indices and tags with ψ exactly as it does the
//!   TAGE direction tables.
//! * **History is self-contained.** Each hardware thread keeps a private
//!   path-history ring (two bits per taken branch, derived from the
//!   branch edge) with Seznec circular-shift folds per table, advanced by
//!   [`Ittage::push_history`] on every taken branch — whether or not a
//!   prediction was made — so replayed streams reproduce bit-identical
//!   state.
//!
//! Decode-path discipline: this file is in the `stbpu analyze`
//! panic-freedom scope — all table accesses are checked (`.get`), and
//! malformed snapshots surface as [`SnapError`]s, never panics.

use stbpu_bpu::{check_len, Mapper, SnapError, StateReader, StateWriter, MAX_THREADS};

/// First mapper bank used by ITTAGE tables. Direction predictors use
/// banks `0..tagged_tables + SC_TABLES + 1` (at most ~16); starting at 32
/// keeps the two keying domains disjoint under every mapper.
pub const ITTAGE_BANK_BASE: usize = 32;

/// Path-history ring capacity (bits); bounds every usable history length.
const HIST_CAP: usize = 1024;

/// Confidence counter ceiling (2 bits).
const CTR_MAX: u8 = 3;

/// Useful counter ceiling (2 bits).
const U_MAX: u8 = 3;

/// Aging period for useful counters (mirrors the TAGE policy).
const TICK_PERIOD: u32 = 1 << 14;

/// Geometry of an [`Ittage`] predictor.
#[derive(Clone, Debug)]
pub struct IttageConfig {
    /// Model label (reports and registry descriptions).
    pub name: &'static str,
    /// log2 entries per tagged table.
    pub idx_bits: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// Path-history length per table (one entry per table, shortest
    /// first). Lengths are clamped to the ring capacity.
    pub hist_lengths: Vec<u32>,
}

impl IttageConfig {
    /// The default eight-table geometry used by the registry's `ittage`
    /// and `tagescl` schemes: 512-entry tables over geometric path
    /// histories 2..256.
    pub fn default_tables() -> Self {
        IttageConfig {
            name: "ITTAGE",
            idx_bits: 9,
            tag_bits: 9,
            hist_lengths: vec![2, 4, 8, 16, 32, 64, 128, 256],
        }
    }

    /// Number of tagged tables (one per configured history length).
    pub fn tables(&self) -> usize {
        self.hist_lengths.len()
    }

    /// History lengths clamped to the ring capacity — the geometry
    /// actually instantiated.
    fn clamped_lengths(&self) -> Vec<u32> {
        self.hist_lengths
            .iter()
            .map(|&l| l.min(HIST_CAP as u32 - 2))
            .collect()
    }
}

/// One tagged-table entry: tag, opaque target payload, confidence and
/// usefulness counters.
#[derive(Clone, Copy, Debug, Default)]
struct IttageEntry {
    tag: u64,
    payload: u64,
    ctr: u8,
    u: u8,
    valid: bool,
}

/// Folded-history register (Seznec's circular shift register fold).
#[derive(Clone, Copy, Debug, Default)]
struct Fold {
    comp: u64,
    clen: u32,
    outpoint: u32,
}

impl Fold {
    fn new(olen: u32, clen: u32) -> Self {
        Fold {
            comp: 0,
            clen: clen.max(1),
            outpoint: olen % clen.max(1),
        }
    }

    /// Updates the fold after `newest` was pushed into the history whose
    /// bit at distance `olen` (post-push) is `oldest`.
    fn update(&mut self, newest: bool, oldest: bool) {
        self.comp = (self.comp << 1) | newest as u64;
        self.comp ^= (oldest as u64) << self.outpoint;
        self.comp ^= self.comp >> self.clen;
        self.comp &= (1u64 << self.clen) - 1;
    }
}

/// Per-hardware-thread path history: a bit ring plus per-table folds.
#[derive(Clone, Debug)]
struct ThreadState {
    bits: Vec<bool>,
    ptr: usize,
    folded_idx: Vec<Fold>,
    folded_tag: Vec<Fold>,
}

impl ThreadState {
    fn new(lengths: &[u32], idx_bits: u32, tag_bits: u32) -> Self {
        ThreadState {
            bits: vec![false; HIST_CAP],
            ptr: 0,
            folded_idx: lengths.iter().map(|&l| Fold::new(l, idx_bits)).collect(),
            folded_tag: lengths.iter().map(|&l| Fold::new(l, tag_bits)).collect(),
        }
    }

    fn bit(&self, back: usize) -> bool {
        self.bits
            .get((self.ptr + HIST_CAP - 1 - back) % HIST_CAP)
            .copied()
            .unwrap_or(false)
    }

    fn push(&mut self, b: bool, lengths: &[u32]) {
        if let Some(slot) = self.bits.get_mut(self.ptr) {
            *slot = b;
        }
        self.ptr = (self.ptr + 1) % HIST_CAP;
        for (i, &l) in lengths.iter().enumerate() {
            let oldest = self.bit(l as usize);
            if let Some(f) = self.folded_idx.get_mut(i) {
                f.update(b, oldest);
            }
            if let Some(f) = self.folded_tag.get_mut(i) {
                f.update(b, oldest);
            }
        }
    }

    fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
        self.ptr = 0;
        for f in self.folded_idx.iter_mut().chain(self.folded_tag.iter_mut()) {
            f.comp = 0;
        }
    }
}

/// The result of a table walk: per-table indices/tags plus the provider
/// chain (longest and next-longest tag hits).
struct Walk {
    indices: Vec<usize>,
    tags: Vec<u64>,
    provider: Option<usize>,
    alt: Option<usize>,
}

/// The ITTAGE indirect-target predictor.
///
/// ```
/// use stbpu_bpu::BaselineMapper;
/// use stbpu_predictors::{Ittage, IttageConfig};
///
/// let mut it = Ittage::new(IttageConfig::default_tables());
/// let m = BaselineMapper::new();
/// assert_eq!(it.predict(&m, 0, 0x40_3000), None); // cold miss
/// it.update(&m, 0, 0x40_3000, 0xdead_beef);
/// it.push_history(0, 0x40_3000, 0x60_0000);
/// ```
#[derive(Clone, Debug)]
pub struct Ittage {
    cfg: IttageConfig,
    /// Clamped per-table history lengths (the instantiated geometry).
    lengths: Vec<u32>,
    tables: Vec<Vec<IttageEntry>>,
    threads: Vec<ThreadState>,
    /// Aging tick for useful counters.
    tick: u32,
    /// Deterministic allocation randomness (xorshift64).
    lfsr: u64,
}

impl Ittage {
    /// Creates an ITTAGE predictor with the given geometry.
    pub fn new(cfg: IttageConfig) -> Self {
        let lengths = cfg.clamped_lengths();
        let tables = vec![vec![IttageEntry::default(); 1 << cfg.idx_bits]; lengths.len()];
        let threads = (0..MAX_THREADS)
            .map(|_| ThreadState::new(&lengths, cfg.idx_bits, cfg.tag_bits))
            .collect();
        Ittage {
            lengths,
            tables,
            threads,
            tick: 0,
            lfsr: 0xace1_2345_6789_abcd,
            cfg,
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &IttageConfig {
        &self.cfg
    }

    fn rand_bit(&mut self) -> bool {
        // xorshift64
        self.lfsr ^= self.lfsr << 13;
        self.lfsr ^= self.lfsr >> 7;
        self.lfsr ^= self.lfsr << 17;
        self.lfsr & 1 == 1
    }

    fn entry(&self, table: usize, idx: usize) -> Option<&IttageEntry> {
        self.tables.get(table).and_then(|t| t.get(idx))
    }

    /// Walks all tables for `pc` under the thread's current folds: mapper
    /// keying, masking, and the provider/alternate search.
    fn walk(&self, m: &dyn Mapper, tid: usize, pc: u64) -> Walk {
        let n = self.lengths.len();
        let mut w = Walk {
            indices: Vec::with_capacity(n),
            tags: Vec::with_capacity(n),
            provider: None,
            alt: None,
        };
        if let Some(t) = self.threads.get(tid) {
            for (i, (fi, ft)) in t.folded_idx.iter().zip(t.folded_tag.iter()).enumerate() {
                let (idx, tag) = m.tage(
                    tid,
                    pc,
                    fi.comp,
                    ft.comp,
                    ITTAGE_BANK_BASE + i,
                    self.cfg.idx_bits,
                    self.cfg.tag_bits,
                );
                w.indices.push(idx & ((1usize << self.cfg.idx_bits) - 1));
                w.tags.push(tag & ((1u64 << self.cfg.tag_bits) - 1));
            }
        }
        for i in (0..w.indices.len()).rev() {
            let hit = w
                .indices
                .get(i)
                .zip(w.tags.get(i))
                .and_then(|(&idx, &tag)| self.entry(i, idx).map(|e| e.valid && e.tag == tag))
                .unwrap_or(false);
            if hit {
                if w.provider.is_none() {
                    w.provider = Some(i);
                } else if w.alt.is_none() {
                    w.alt = Some(i);
                    break;
                }
            }
        }
        w
    }

    /// The payload the walk's provider chain predicts: the longest match,
    /// unless it is weakly confident and an alternate match exists.
    fn predicted_payload(&self, w: &Walk) -> Option<u64> {
        let payload_of = |t: usize| {
            w.indices
                .get(t)
                .and_then(|&idx| self.entry(t, idx))
                .map(|e| (e.payload, e.ctr))
        };
        let (p_payload, p_ctr) = payload_of(w.provider?)?;
        if p_ctr == 0 {
            if let Some(a) = w.alt {
                if let Some((a_payload, _)) = payload_of(a) {
                    return Some(a_payload);
                }
            }
        }
        Some(p_payload)
    }

    /// Predicts the stored payload for an indirect branch at `pc`, or
    /// `None` when no tagged table matches (the caller falls back to the
    /// BTB). Non-mutating: the paired [`Ittage::update`] recomputes the
    /// walk, so prediction and training agree whether or not the
    /// front end consulted the predictor for this branch.
    pub fn predict(&self, m: &dyn Mapper, tid: usize, pc: u64) -> Option<u64> {
        let w = self.walk(m, tid, pc);
        self.predicted_payload(&w)
    }

    /// Trains the predictor with the resolved payload of a taken indirect
    /// branch at `pc` (the same opaque encoding [`Ittage::predict`]
    /// returns). Must be called before [`Ittage::push_history`] for the
    /// same branch.
    pub fn update(&mut self, m: &dyn Mapper, tid: usize, pc: u64, payload: u64) {
        let w = self.walk(m, tid, pc);
        let predicted = self.predicted_payload(&w);
        let correct = predicted == Some(payload);

        // Provider training: confidence tracks payload agreement; the
        // useful counter rewards providing a payload the alternate chain
        // would have gotten wrong.
        if let Some(p) = w.provider {
            let alt_payload = w
                .alt
                .and_then(|a| w.indices.get(a).and_then(|&idx| self.entry(a, idx)))
                .map(|e| e.payload);
            if let Some(e) = w
                .indices
                .get(p)
                .copied()
                .and_then(|idx| self.tables.get_mut(p).and_then(|t| t.get_mut(idx)))
            {
                if e.payload == payload {
                    e.ctr = (e.ctr + 1).min(CTR_MAX);
                    if alt_payload != Some(payload) {
                        e.u = (e.u + 1).min(U_MAX);
                    }
                } else if e.ctr > 0 {
                    e.ctr -= 1;
                } else {
                    e.payload = payload;
                    e.ctr = 1;
                    e.u = 0;
                }
            }
        }

        // Allocation on misprediction in a longer-history table, with the
        // TAGE skip-one policy and periodic useful-counter aging.
        let n = self.lengths.len();
        let start = w.provider.map(|p| p + 1).unwrap_or(0);
        if !correct && start < n {
            let mut candidates: Vec<usize> = (start..n)
                .filter(|&j| {
                    w.indices
                        .get(j)
                        .and_then(|&idx| self.entry(j, idx))
                        .is_some_and(|e| e.u == 0)
                })
                .collect();
            if candidates.is_empty() {
                for j in start..n {
                    if let Some(e) = w
                        .indices
                        .get(j)
                        .copied()
                        .and_then(|idx| self.tables.get_mut(j).and_then(|t| t.get_mut(idx)))
                    {
                        e.u = e.u.saturating_sub(1);
                    }
                }
                self.tick += 1;
                if self.tick >= TICK_PERIOD {
                    self.tick = 0;
                    for table in &mut self.tables {
                        for e in table.iter_mut() {
                            e.u >>= 1;
                        }
                    }
                }
            } else {
                let mut pick = candidates.remove(0);
                if !candidates.is_empty() && self.rand_bit() {
                    pick = candidates.remove(0);
                }
                if let Some((idx, tag)) =
                    w.indices.get(pick).copied().zip(w.tags.get(pick).copied())
                {
                    if let Some(e) = self.tables.get_mut(pick).and_then(|t| t.get_mut(idx)) {
                        *e = IttageEntry {
                            tag,
                            payload,
                            ctr: 1,
                            u: 0,
                            valid: true,
                        };
                    }
                }
            }
        }
    }

    /// Advances thread `tid`'s path history with the taken edge
    /// `pc → target` (two bits per edge). Called for every taken branch —
    /// including those that never consulted [`Ittage::predict`] — so the
    /// history a resumed or sharded run reconstructs is bit-identical to
    /// the straight-through run.
    pub fn push_history(&mut self, tid: usize, pc: u64, target: u64) {
        let lengths = std::mem::take(&mut self.lengths);
        if let Some(t) = self.threads.get_mut(tid) {
            // Mix the whole edge before picking two bits: aligned code
            // makes the low address bits constant, so a plain low-bit pick
            // would push a degenerate all-zero history.
            let h = (pc ^ target.rotate_left(7)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            t.push(h >> 63 & 1 == 1, &lengths);
            t.push(h >> 62 & 1 == 1, &lengths);
        }
        self.lengths = lengths;
    }

    /// Invalidates all entries and clears every thread's path history.
    pub fn flush(&mut self) {
        for t in &mut self.tables {
            t.iter_mut().for_each(|e| *e = IttageEntry::default());
        }
        for th in &mut self.threads {
            th.clear();
        }
        self.tick = 0;
    }

    /// Serializes tables, per-thread histories and allocator state for
    /// checkpointing.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.tables.len());
        for table in &self.tables {
            w.usize(table.len());
            for e in table {
                w.u64(e.tag);
                w.u64(e.payload);
                w.u8(e.ctr);
                w.u8(e.u);
                w.bool(e.valid);
            }
        }
        w.usize(self.threads.len());
        for t in &self.threads {
            for b in &t.bits {
                w.bool(*b);
            }
            w.usize(t.ptr);
            for f in t.folded_idx.iter().chain(t.folded_tag.iter()) {
                w.u64(f.comp);
            }
        }
        w.u32(self.tick);
        w.u64(self.lfsr);
    }

    /// Restores state saved by [`Ittage::save_state`] into a predictor of
    /// identical geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on geometry mismatches or out-of-range
    /// counters — malformed snapshots never panic.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let nt = r.usize()?;
        check_len(r, "ITTAGE tables", nt, self.tables.len())?;
        for table in &mut self.tables {
            let n = r.usize()?;
            check_len(r, "ITTAGE table", n, table.len())?;
            for e in table.iter_mut() {
                e.tag = r.u64()?;
                e.payload = r.u64()?;
                e.ctr = r.u8()?;
                if e.ctr > CTR_MAX {
                    return Err(r.err(format!("ITTAGE confidence {} out of range", e.ctr)));
                }
                e.u = r.u8()?;
                if e.u > U_MAX {
                    return Err(r.err(format!("ITTAGE useful bits {} out of range", e.u)));
                }
                e.valid = r.bool()?;
            }
        }
        let nthreads = r.usize()?;
        check_len(r, "ITTAGE threads", nthreads, self.threads.len())?;
        for t in &mut self.threads {
            for b in &mut t.bits {
                *b = r.bool()?;
            }
            let ptr = r.usize()?;
            if ptr >= HIST_CAP {
                return Err(r.err(format!("ITTAGE history pointer {ptr} out of range")));
            }
            t.ptr = ptr;
            for f in t.folded_idx.iter_mut().chain(t.folded_tag.iter_mut()) {
                f.comp = r.u64()?;
            }
        }
        self.tick = r.u32()?;
        self.lfsr = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::BaselineMapper;

    fn trained(edges: &[(u64, u64)], reps: usize) -> (Ittage, BaselineMapper) {
        let mut it = Ittage::new(IttageConfig::default_tables());
        let m = BaselineMapper::new();
        for _ in 0..reps {
            for &(pc, payload) in edges {
                it.update(&m, 0, pc, payload);
                it.push_history(0, pc, payload);
            }
        }
        (it, m)
    }

    #[test]
    fn cold_predictor_misses() {
        let it = Ittage::new(IttageConfig::default_tables());
        assert_eq!(it.predict(&BaselineMapper::new(), 0, 0x40_0000), None);
    }

    #[test]
    fn single_target_learned() {
        let (it, m) = trained(&[(0x40_3000, 0xaaaa)], 8);
        assert_eq!(it.predict(&m, 0, 0x40_3000), Some(0xaaaa));
    }

    #[test]
    fn context_dependent_targets_separated() {
        // One static branch alternating between two targets in a strict
        // period: path history must disambiguate where a last-target
        // predictor cannot.
        let mut it = Ittage::new(IttageConfig::default_tables());
        let m = BaselineMapper::new();
        let pc = 0x40_3000u64;
        let mut correct = 0u32;
        let mut total = 0u32;
        for i in 0..4000u64 {
            let payload = if i % 2 == 0 { 0x1111 } else { 0x2222 };
            if i >= 2000 {
                total += 1;
                if it.predict(&m, 0, pc) == Some(payload) {
                    correct += 1;
                }
            }
            it.update(&m, 0, pc, payload);
            it.push_history(0, pc, payload);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "alternating-target accuracy {acc}");
    }

    #[test]
    fn threads_have_independent_history() {
        let (mut it, m) = trained(&[(0x40_3000, 0xbbbb)], 8);
        // Thread 1 shares tables but starts with empty history; after the
        // same training it converges too, and thread 0 is unaffected.
        for _ in 0..8 {
            it.update(&m, 1, 0x40_3000, 0xcccc);
            it.push_history(1, 0x40_3000, 0xcccc);
        }
        assert_eq!(it.predict(&m, 0, 0x40_3000), Some(0xbbbb));
    }

    #[test]
    fn flush_forgets_everything() {
        let (mut it, m) = trained(&[(0x40_3000, 0xdddd)], 8);
        it.flush();
        assert_eq!(it.predict(&m, 0, 0x40_3000), None);
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let (mut it, m) = trained(&[(0x40_3000, 0xaaaa), (0x40_4000, 0xbbbb)], 20);
        let mut w = StateWriter::new();
        it.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = Ittage::new(IttageConfig::default_tables());
        let mut r = StateReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        r.expect_end().unwrap();

        // Same predictions and identical re-serialization.
        assert_eq!(
            fresh.predict(&m, 0, 0x40_3000),
            it.predict(&m, 0, 0x40_3000)
        );
        let mut w2 = StateWriter::new();
        fresh.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);

        // Continued identical training stays in lockstep.
        it.update(&m, 0, 0x40_3000, 0x9999);
        it.push_history(0, 0x40_3000, 0x9999);
        fresh.update(&m, 0, 0x40_3000, 0x9999);
        fresh.push_history(0, 0x40_3000, 0x9999);
        let (mut wa, mut wb) = (StateWriter::new(), StateWriter::new());
        it.save_state(&mut wa);
        fresh.save_state(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn corrupt_snapshots_error_not_panic() {
        let (it, _) = trained(&[(0x40_3000, 0xaaaa)], 4);
        let mut w = StateWriter::new();
        it.save_state(&mut w);
        let bytes = w.into_bytes();

        // Truncations at every prefix length fail cleanly.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut fresh = Ittage::new(IttageConfig::default_tables());
            let mut r = StateReader::new(&bytes[..cut]);
            assert!(fresh.load_state(&mut r).is_err(), "cut at {cut} must fail");
        }

        // Geometry mismatch is rejected.
        let mut small = Ittage::new(IttageConfig {
            hist_lengths: vec![2, 4],
            ..IttageConfig::default_tables()
        });
        let mut r = StateReader::new(&bytes);
        assert!(small.load_state(&mut r).is_err());
    }
}

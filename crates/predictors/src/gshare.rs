//! A plain gshare predictor (Yeh–Patt two-level with global history XOR),
//! used by ablation benches as a reference point for the SKL hybrid.

use crate::direction::{DirPrediction, DirectionPredictor, Provider};
use stbpu_bpu::{HistoryCtx, Mapper, Pht, SnapError, StateReader, StateWriter};

/// A single-table gshare direction predictor.
///
/// ```
/// use stbpu_bpu::{BaselineMapper, HistoryCtx};
/// use stbpu_predictors::{DirectionPredictor, Gshare};
///
/// let mut g = Gshare::new(1 << 14);
/// let m = BaselineMapper::new();
/// let h = HistoryCtx::new();
/// let p = g.predict(&m, 0, 0x1234, &h);
/// g.update(&m, 0, 0x1234, &h, true, p);
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    pht: Pht,
}

impl Gshare {
    /// Creates a gshare predictor with a power-of-two table size.
    pub fn new(entries: usize) -> Self {
        Gshare {
            pht: Pht::new(entries),
        }
    }
}

impl DirectionPredictor for Gshare {
    fn name(&self) -> &'static str {
        "gshare"
    }

    fn predict(&mut self, m: &dyn Mapper, tid: usize, pc: u64, h: &HistoryCtx) -> DirPrediction {
        let idx = m.pht2(tid, pc, h.ghr()) % self.pht.len();
        DirPrediction {
            taken: self.pht.predict(idx),
            provider: Provider::TwoLevel,
        }
    }

    fn update(
        &mut self,
        m: &dyn Mapper,
        tid: usize,
        pc: u64,
        h: &HistoryCtx,
        taken: bool,
        _pred: DirPrediction,
    ) {
        let idx = m.pht2(tid, pc, h.ghr()) % self.pht.len();
        self.pht.train(idx, taken);
    }

    fn flush(&mut self) {
        self.pht.flush();
    }

    fn save_state(&self, w: &mut StateWriter) -> Result<(), SnapError> {
        self.pht.save_state(w);
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.pht.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stbpu_bpu::BaselineMapper;

    #[test]
    fn learns_a_biased_branch() {
        let mut g = Gshare::new(1 << 10);
        let m = BaselineMapper::new();
        let mut h = HistoryCtx::new();
        for _ in 0..16 {
            let p = g.predict(&m, 0, 0x400, &h);
            g.update(&m, 0, 0x400, &h, true, p);
            h.push_outcome(true);
        }
        assert!(g.predict(&m, 0, 0x400, &h).taken);
    }

    #[test]
    fn learns_history_correlated_pattern() {
        // Alternating T/N branch: pure bimodal would sit at ~50 %, gshare
        // should learn the alternation through the GHR.
        let mut g = Gshare::new(1 << 10);
        let m = BaselineMapper::new();
        let mut h = HistoryCtx::new();
        let mut correct = 0;
        let mut taken = false;
        for i in 0..400 {
            let p = g.predict(&m, 0, 0x888, &h);
            if i >= 200 && p.taken == taken {
                correct += 1;
            }
            g.update(&m, 0, 0x888, &h, taken, p);
            h.push_outcome(taken);
            taken = !taken;
        }
        assert!(
            correct > 180,
            "gshare should learn alternation, got {correct}/200"
        );
    }

    #[test]
    fn flush_forgets() {
        let mut g = Gshare::new(1 << 10);
        let m = BaselineMapper::new();
        let h = HistoryCtx::new();
        for _ in 0..8 {
            let p = g.predict(&m, 0, 0x400, &h);
            g.update(&m, 0, 0x400, &h, true, p);
        }
        assert!(g.predict(&m, 0, 0x400, &h).taken);
        g.flush();
        assert!(!g.predict(&m, 0, 0x400, &h).taken);
    }
}
